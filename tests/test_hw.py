"""Hardware substrate: caches, PCIe, memory regions, CPU meters, RNIC."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import NetConfig, NicConfig
from repro.hw import (
    AccessError,
    CoreMeter,
    CpuMeter,
    HostMemory,
    LruCache,
    MemoryRegion,
    PcieLink,
    Rnic,
)
from repro.sim import Simulator

from conftest import run_gen


class TestLruCache:
    def test_hit_after_insert(self):
        cache = LruCache(2)
        assert not cache.access("a")  # miss installs
        assert cache.access("a")

    def test_eviction_is_lru(self):
        cache = LruCache(2)
        cache.access("a")
        cache.access("b")
        cache.access("a")  # a most recent
        cache.access("c")  # evicts b
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_stats(self):
        cache = LruCache(1)
        cache.access("a")
        cache.access("a")
        cache.access("b")
        assert cache.stats.hits == 1
        assert cache.stats.misses == 2
        assert cache.stats.evictions == 1
        assert cache.stats.miss_ratio == pytest.approx(2 / 3)

    def test_invalidate(self):
        cache = LruCache(4)
        cache.access("a")
        assert cache.invalidate("a")
        assert not cache.invalidate("a")
        assert "a" not in cache

    def test_capacity_bound(self):
        cache = LruCache(3)
        for i in range(100):
            cache.access(i)
        assert len(cache) == 3

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            LruCache(0)

    @given(st.integers(min_value=1, max_value=8),
           st.lists(st.integers(min_value=0, max_value=20), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_size_never_exceeds_capacity(self, capacity, accesses):
        cache = LruCache(capacity)
        for key in accesses:
            cache.access(key)
            assert len(cache) <= capacity

    @given(st.integers(min_value=2, max_value=10))
    @settings(max_examples=20, deadline=None)
    def test_working_set_within_capacity_never_misses_twice(self, capacity):
        cache = LruCache(capacity)
        keys = list(range(capacity))
        for key in keys:
            cache.access(key)
        cache.stats.reset()
        for _round in range(5):
            for key in keys:
                assert cache.access(key)
        assert cache.stats.misses == 0


class TestPcie:
    def test_read_takes_latency(self, sim):
        link = PcieLink(sim, read_latency_ns=700, slots=4)

        def proc():
            yield from link.read()
            return sim.now

        assert run_gen(sim, proc()) == 700
        assert link.reads_issued == 1

    def test_slots_bound_concurrency(self, sim):
        link = PcieLink(sim, read_latency_ns=100, slots=2)
        finish = []

        def proc():
            yield from link.read()
            finish.append(sim.now)

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        # Two waves of two concurrent reads.
        assert finish == [100, 100, 200, 200]

    def test_negative_latency_rejected(self, sim):
        with pytest.raises(ValueError):
            PcieLink(sim, read_latency_ns=-1, slots=1)


class TestMemory:
    def test_register_and_lookup(self):
        mem = HostMemory()
        region = mem.register(4096)
        assert mem.lookup(region.rkey) is region
        assert len(mem) == 1

    def test_regions_disjoint_and_aligned(self):
        mem = HostMemory()
        a = mem.register(100)
        b = mem.register(100)
        assert a.end <= b.addr
        assert b.addr % 4096 == 0

    def test_unknown_rkey(self):
        mem = HostMemory()
        with pytest.raises(AccessError):
            mem.lookup(999999)

    def test_deregister(self):
        mem = HostMemory()
        region = mem.register(64)
        mem.deregister(region.rkey)
        with pytest.raises(AccessError):
            mem.lookup(region.rkey)

    def test_bounds_check(self):
        region = MemoryRegion(0x1000, 64)
        region.check(0x1000, 64, "read")
        with pytest.raises(AccessError):
            region.check(0x1000, 65, "read")
        with pytest.raises(AccessError):
            region.check(0x0FFF, 8, "read")

    def test_permission_check(self):
        region = MemoryRegion(0, 64, remote_write=False)
        with pytest.raises(AccessError):
            region.check(0, 8, "write")
        region.check(0, 8, "read")

    def test_word_backing(self):
        region = MemoryRegion(0, 64)
        region.write_word(8, 12345)
        assert region.read_word(8) == 12345
        assert region.read_word(16) == 0

    def test_region_for(self):
        mem = HostMemory()
        region = mem.register(4096)
        assert mem.region_for(region.addr + 10, 8) is region
        assert mem.region_for(region.end + 10, 8) is None

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            MemoryRegion(0, 0)


class TestCpuMeters:
    def test_charge_accumulates(self, sim):
        core = CoreMeter(sim)

        def proc():
            yield core.charge(100, "net")
            yield core.charge(50, "app")

        run_gen(sim, proc())
        assert core.total_busy_ns == 150
        assert core.fraction("net") == pytest.approx(100 / 150)

    def test_utilization(self, sim):
        core = CoreMeter(sim)

        def proc():
            yield core.charge(50)
            yield sim.timeout(50)

        run_gen(sim, proc())
        assert core.utilization() == pytest.approx(0.5)

    def test_negative_charge_rejected(self, sim):
        core = CoreMeter(sim)
        with pytest.raises(ValueError):
            core.charge(-1)

    def test_cpu_meter_network_fraction(self, sim):
        cpu = CpuMeter(sim, cores=2)

        def proc():
            yield cpu[0].charge(100, "net-poll")
            yield cpu[1].charge(100, "app")

        run_gen(sim, proc())
        assert cpu.network_fraction() == pytest.approx(0.5)
        assert len(cpu) == 2


class TestRnic:
    def make(self, sim, **overrides):
        nic_cfg = NicConfig(**overrides)
        return Rnic(sim, nic_cfg, NetConfig())

    def test_packet_math(self, sim):
        rnic = self.make(sim)
        assert rnic.packets_for(0) == 1
        assert rnic.packets_for(4096) == 1
        assert rnic.packets_for(4097) == 2
        assert rnic.wire_bytes(64) == 64 + 60

    def test_wire_time_scales_with_size(self, sim):
        rnic = self.make(sim)
        assert rnic.wire_time_ns(8192) > rnic.wire_time_ns(64)

    def test_cache_miss_stalls_on_pcie(self, sim):
        rnic = self.make(sim, qp_cache_entries=1, cache_miss_ns=500)

        def proc():
            yield from rnic.tx_process(64, qpn=1)
            t_first = sim.now
            yield from rnic.tx_process(64, qpn=1)  # hit: no PCIe
            t_second = sim.now - t_first
            yield from rnic.tx_process(64, qpn=2)  # miss again
            t_third = sim.now - t_first - t_second
            return t_second, t_third

        hit_time, miss_time = run_gen(sim, proc())
        assert miss_time - hit_time == pytest.approx(500, rel=1e-6)

    def test_message_rate_ceiling(self, sim):
        rnic = self.make(sim, message_rate=0.001, message_burst=1)  # 1/µs

        def proc():
            for _ in range(10):
                yield from rnic.rx_process(64, qpn=1)
            return sim.now

        elapsed = run_gen(sim, proc())
        assert elapsed >= 9_000  # 10 messages at 1/µs

    def test_stats_snapshot(self, sim):
        rnic = self.make(sim)

        def proc():
            yield from rnic.tx_process(100, qpn=1)

        run_gen(sim, proc())
        snap = rnic.snapshot()
        assert snap["messages_tx"] == 1
        assert snap["bytes_tx"] == 100
        assert snap["packets_tx"] == 1
