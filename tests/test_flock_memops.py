"""FLock memory/atomic operations through the connection handle (§6)."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator
from repro.verbs import Verb


def make_pair(n_qps=2):
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    cfg = FlockConfig(qps_per_handle=n_qps)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, 100.0))
    client = FlockNode(sim, clients[0], fabric, cfg, seed=3)
    handle = client.fl_connect(server, n_qps=n_qps)
    region = client.fl_attach_mreg(handle, 1 << 20)
    return sim, server, client, handle, region


class TestMemoryVerbs:
    def test_write_then_read(self):
        sim, server, client, handle, region = make_pair()
        out = []

        def app():
            wc = yield from client.fl_write(handle, 0, region.addr,
                                            region.rkey, 256, payload="blob")
            assert wc.ok
            region.words[region.addr] = 42  # server-side state for read
            wc = yield from client.fl_read(handle, 0, region.addr,
                                           region.rkey, 8)
            out.append(wc.payload)

        sim.spawn(app())
        sim.run(until=2_000_000)
        assert out == [42]

    def test_fetch_and_add_serializes(self):
        sim, server, client, handle, region = make_pair()
        olds = []

        def app(tid):
            wc = yield from client.fl_fetch_and_add(handle, tid, region.addr,
                                                    region.rkey, 1)
            olds.append(wc.payload)

        for tid in range(8):
            sim.spawn(app(tid))
        sim.run(until=3_000_000)
        assert sorted(olds) == list(range(8))
        assert region.words[region.addr] == 8

    def test_cmp_and_swap(self):
        sim, server, client, handle, region = make_pair()
        results = []

        def app():
            wc = yield from client.fl_cmp_and_swap(handle, 0, region.addr,
                                                   region.rkey, 0, 111)
            results.append(wc.payload)
            wc = yield from client.fl_cmp_and_swap(handle, 0, region.addr,
                                                   region.rkey, 0, 222)
            results.append(wc.payload)

        sim.spawn(app())
        sim.run(until=2_000_000)
        assert results == [0, 111]
        assert region.words[region.addr] == 111

    def test_mixed_rpc_and_memops_on_shared_qp(self):
        """RPC and memory ops sharing a QP stay correctly routed (§6)."""
        sim, server, client, handle, region = make_pair(n_qps=1)
        rpc_done = [0]
        mem_done = [0]

        def rpc_worker(tid):
            for _ in range(10):
                resp = yield from client.fl_call(handle, tid, 1, 64, tid)
                assert resp.thread_id == tid
                rpc_done[0] += 1

        def mem_worker(tid):
            for _ in range(10):
                wc = yield from client.fl_fetch_and_add(
                    handle, tid, region.addr, region.rkey, 1)
                assert wc.ok
                mem_done[0] += 1

        for tid in range(3):
            sim.spawn(rpc_worker(tid))
        for tid in range(3, 6):
            sim.spawn(mem_worker(tid))
        sim.run(until=10_000_000)
        assert rpc_done[0] == 30
        assert mem_done[0] == 30
        assert region.words[region.addr] == 30

    def test_memops_complete_without_response_dispatcher(self):
        """Memory ops complete via verbs completions, not responses —
        their completion does not consume server worker CPU."""
        sim, server, client, handle, region = make_pair()
        before = server.server.requests_handled

        def app():
            yield from client.fl_write(handle, 0, region.addr, region.rkey, 64)

        sim.spawn(app())
        sim.run(until=2_000_000)
        assert server.server.requests_handled == before

    def test_memop_batch_posting_single_doorbell(self):
        """Followers delegate posting to the leader: concurrent memops on
        one QP coalesce into leader cycles."""
        sim, server, client, handle, region = make_pair(n_qps=1)
        channel = handle.channels[0]

        def app(tid):
            for _ in range(5):
                yield from client.fl_fetch_and_add(handle, tid, region.addr,
                                                   region.rkey, 1)

        for tid in range(6):
            sim.spawn(app(tid))
        sim.run(until=10_000_000)
        assert region.words[region.addr] == 30
        # Leader cycles < total ops implies batched doorbells.
        assert channel.tcq.leader_cycles < 30
