"""Mutation tests: each auditor catches exactly the bug it guards.

An invariant check that never fires is untested.  Here we seed three
deliberate accounting bugs through :mod:`repro.obs.faults` — drop a
credit refill, leak a CQE, double-count a QP-cache hit — and assert the
matching auditor (and only that auditor) reports a violation, while an
unmutated run stays clean.
"""

import pytest

from repro.harness import MicrobenchConfig, run_flock
from repro.obs import AuditError, faults

CFG = MicrobenchConfig(n_clients=3, threads_per_client=4, outstanding=4,
                       warmup_ns=150_000, measure_ns=150_000)


def violating_auditors(fault_name):
    """Run the microbenchmark with ``fault_name`` injected; return the
    set of auditor names that reported violations."""
    with faults.injected(fault_name):
        with pytest.raises(AuditError) as excinfo:
            run_flock(CFG, audit=True)
    report = excinfo.value.report
    return {v.auditor for v in report.violations}, report


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    faults.clear()


def test_baseline_is_clean():
    assert not faults.ACTIVE
    result = run_flock(CFG, audit=True)
    assert result.audit_report.ok, result.audit_report.format()


def test_dropped_credit_refill_trips_only_credit_auditor():
    auditors, report = violating_auditors("credits.drop_refill")
    assert auditors == {"credits"}, report.format()
    assert any(v.invariant.startswith("flock.credits.conservation")
               for v in report.violations)


def test_leaked_cqe_trips_only_cqe_auditor():
    auditors, report = violating_auditors("verbs.leak_cqe")
    assert auditors == {"cqe-conservation"}, report.format()
    v = report.violations[0]
    # The NIC generated CQEs that never reached a completion queue.
    assert v.observed > v.expected


def test_double_counted_cache_hit_trips_only_qp_cache_auditor():
    auditors, report = violating_auditors("rnic.double_count_hit")
    assert auditors == {"qp-cache"}, report.format()
    assert any("qp_cache.hits" in v.invariant for v in report.violations)


class TestFaultHook:
    def test_unknown_fault_rejected(self):
        with pytest.raises(ValueError):
            faults.inject("no.such.fault")
        assert not faults.ACTIVE

    def test_injected_context_restores(self):
        assert not faults.is_active("verbs.leak_cqe")
        with faults.injected("verbs.leak_cqe"):
            assert faults.is_active("verbs.leak_cqe")
        assert not faults.is_active("verbs.leak_cqe")

    def test_injected_clears_on_error(self):
        with pytest.raises(RuntimeError):
            with faults.injected("verbs.leak_cqe"):
                raise RuntimeError("boom")
        assert not faults.ACTIVE

    def test_clear_all(self):
        faults.inject("verbs.leak_cqe")
        faults.inject("credits.drop_refill")
        faults.clear()
        assert not faults.ACTIVE

    def test_every_declared_fault_site_is_wired(self):
        """Grep-level guard: each FAULT_NAMES entry appears in exactly
        the module its prefix names, so a renamed site cannot silently
        detach from its guard."""
        import os

        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        modules = {
            "credits.drop_refill": os.path.join(root, "flock", "credits.py"),
            "verbs.leak_cqe": os.path.join(root, "verbs", "qp.py"),
            "rnic.double_count_hit": os.path.join(root, "hw", "rnic.py"),
            "bench.step_handler_cost": os.path.join(
                root, "harness", "microbench.py"),
        }
        assert set(modules) == set(faults.FAULT_NAMES)
        for name, path in modules.items():
            with open(path) as fh:
                assert name in fh.read(), "%s not wired in %s" % (name, path)
