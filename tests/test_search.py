"""The adversarial scenario search: space/mutation/objective units and
the determinism contract.

The acceptance criterion mirrors the sweep executor's: a search at
``jobs=N`` must produce a *byte-identical* leaderboard (and JSON export)
to a serial run, because every candidate's evaluation seed derives from
the root seed and the candidate's config fingerprint — never from
evaluation order or worker assignment.  These tests pin the identity
system (fingerprints, clamping, ``Streams.child``), the mutation
kernels' always-move guarantee, objective parsing, the driver's budget
and dedup accounting, and end-to-end determinism at smoke scale.
"""

import json
import random

import pytest

from repro.harness.cli import main
from repro.harness.scorecards import scorecard_search
from repro.search import (
    BoolDim,
    ChoiceDim,
    FloatDim,
    IntDim,
    SearchConfig,
    SearchSpace,
    default_space,
    get_objective,
    list_objectives,
    mutate_point,
    run_search,
)
from repro.search.mutate import mutate_value
from repro.search.scenarios import CURATED_SCENARIOS
from repro.search.space import dim_from_dict
from repro.sim.rand import Streams

SMOKE = "0.05"


def _tiny_space():
    """A small space whose evaluations stay cheap and collide often."""
    return SearchSpace([
        IntDim("a", 1, 4),
        FloatDim("b", 0.0, 1.0),
        BoolDim("c"),
    ])


class TestDimensions:
    def test_int_sample_and_clamp(self):
        dim = IntDim("x", 4, 16)
        rng = random.Random(1)
        assert all(4 <= dim.sample(rng) <= 16 for _ in range(50))
        assert dim.clamp(-3) == 4
        assert dim.clamp(99) == 16
        assert dim.clamp(7.6) == 8

    def test_int_log_sampling_stays_in_range(self):
        dim = IntDim("x", 64, 1024, log=True)
        rng = random.Random(2)
        values = [dim.sample(rng) for _ in range(200)]
        assert all(64 <= v <= 1024 for v in values)
        # Log sampling actually reaches the low decades, not just the
        # arithmetic middle of the range.
        assert min(values) < 128

    def test_float_clamp_rounds_to_significant_digits(self):
        dim = FloatDim("x", 0.0, 1.0)
        assert dim.clamp(0.123456789) == 0.123457
        assert dim.clamp(2.0) == 1.0

    def test_bool_and_choice(self):
        rng = random.Random(3)
        assert {BoolDim("x").sample(rng) for _ in range(20)} == {True, False}
        dim = ChoiceDim("x", ("a", "b"))
        assert dim.clamp("b") == "b"
        assert dim.clamp("zzz") == "a"

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            IntDim("x", 5, 4)
        with pytest.raises(ValueError):
            IntDim("x", 0, 4, log=True)
        with pytest.raises(ValueError):
            FloatDim("x", 0.0, 1.0, log=True)
        with pytest.raises(ValueError):
            ChoiceDim("x", ())

    def test_dim_round_trips_through_dict(self):
        for dim in (IntDim("i", 1, 9, log=True), FloatDim("f", 0.5, 2.0),
                    BoolDim("b"), ChoiceDim("c", (1, 2, 3))):
            assert dim_from_dict(dim.to_dict()) == dim


class TestSearchSpace:
    def test_sample_is_complete_and_in_domain(self):
        space = default_space()
        point = space.sample(random.Random(7))
        assert set(point) == set(space.dims)
        assert space.clamp(point) == point

    def test_clamp_rejects_unknown_and_missing_keys(self):
        space = _tiny_space()
        with pytest.raises(ValueError, match="unknown"):
            space.clamp({"a": 1, "b": 0.5, "c": True, "zzz": 1})
        with pytest.raises(ValueError, match="missing"):
            space.clamp({"a": 1})

    def test_duplicate_dimension_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace([IntDim("a", 1, 2), BoolDim("a")])

    def test_fingerprint_is_canonical(self):
        space = _tiny_space()
        point = {"a": 2, "b": 0.25, "c": True}
        fp = space.fingerprint(point)
        assert len(fp) == 16
        # Key order and float spelling don't matter; values do.
        assert space.fingerprint({"c": 1, "b": 0.250000, "a": 2.2}) == fp
        assert space.fingerprint({"a": 3, "b": 0.25, "c": True}) != fp
        assert space.point_id(point) == "search/%s" % fp

    def test_fingerprint_survives_json_round_trip(self):
        space = default_space()
        point = space.sample(random.Random(11))
        thawed = json.loads(json.dumps(point))
        assert space.fingerprint(thawed) == space.fingerprint(point)

    def test_space_round_trips_through_dict(self):
        space = default_space()
        rebuilt = SearchSpace.from_dict(space.to_dict())
        assert list(rebuilt.dims) == list(space.dims)
        point = space.sample(random.Random(5))
        assert rebuilt.fingerprint(point) == space.fingerprint(point)


class TestMutation:
    def test_mutation_always_moves(self):
        """The driver relies on mutations changing the clamped point —
        a no-op proposal would re-fingerprint the parent and stall."""
        space = default_space()
        rng = random.Random(13)
        for name, dim in space.dims.items():
            for _ in range(25):
                value = dim.sample(rng)
                assert mutate_value(dim, value, rng) != dim.clamp(value), name

    def test_mutation_at_bounds_moves_inward(self):
        dim = IntDim("x", 1, 8)
        rng = random.Random(17)
        assert all(1 <= mutate_value(dim, 8, rng) <= 8 for _ in range(25))
        assert all(mutate_value(dim, 1, rng) != 1 for _ in range(25))

    def test_single_value_dimension_is_fixed_point(self):
        # Degenerate lo == hi: nothing to move to; must not loop or raise.
        assert mutate_value(IntDim("x", 5, 5), 5, random.Random(1)) == 5
        assert mutate_value(ChoiceDim("x", ("only",)), "only",
                            random.Random(1)) == "only"

    def test_mutate_point_changes_one_or_two_dims(self):
        space = _tiny_space()
        rng = random.Random(19)
        parent = space.sample(rng)
        for _ in range(30):
            child = mutate_point(space, parent, rng)
            changed = [k for k in parent if child[k] != parent[k]]
            assert 1 <= len(changed) <= 2

    def test_mutate_point_is_seed_deterministic(self):
        space = default_space()
        parent = space.sample(random.Random(23))
        a = mutate_point(space, parent, random.Random(99))
        b = mutate_point(space, parent, random.Random(99))
        assert a == b


class TestObjectives:
    def test_parse_plain_and_parameterized(self):
        assert get_objective("tail_ratio").spec == "tail_ratio"
        obj = get_objective("attribution_shift:pfc_pause")
        assert obj.needs_trace and obj.arg == "pfc_pause"
        assert obj.spec == "attribution_shift:pfc_pause"

    def test_unknown_name_and_stray_arg_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            get_objective("zzz")
        with pytest.raises(ValueError, match="takes no argument"):
            get_objective("tail_ratio:oops")

    def test_scores_from_evaluation_dict(self):
        ev = {"tail_ratio": 12.5, "goodput_retained": 0.25,
              "max_anomaly_severity": 3.0,
              "shift": [{"resource": "pfc_pause", "delta": 0.7},
                        {"resource": "cpu", "delta": 0.1}]}
        assert get_objective("tail_ratio").score(ev) == 12.5
        assert get_objective("goodput_collapse").score(ev) == 0.75
        assert get_objective("anomaly_severity").score(ev) == 3.0
        assert get_objective("attribution_shift").score(ev) == 0.7
        assert get_objective("attribution_shift:cpu").score(ev) == 0.1
        assert get_objective("attribution_shift:zzz").score(ev) == 0.0

    def test_collapse_clips_at_zero(self):
        # A scenario *faster* than its baseline is not a collapse.
        assert get_objective("goodput_collapse").score(
            {"goodput_retained": 1.3}) == 0.0

    def test_registry_is_complete(self):
        assert {obj.name for obj in list_objectives()} == {
            "tail_ratio", "goodput_collapse", "anomaly_severity",
            "attribution_shift"}


class TestChildStreamCollisions:
    def test_ten_thousand_structured_ids_do_not_collide(self):
        """The search derives one child seed per candidate fingerprint;
        with the old 32-bit mixing, ~10k ids had better-than-even odds
        of a birthday collision (two candidates sharing an RNG)."""
        root = Streams(7)
        ids = ["search/cand-%04x%012x" % (i, i * 0x9E3779B9)
               for i in range(10_000)]
        seeds = {root.child(point_id).seed for point_id in ids}
        assert len(seeds) == 10_000

    def test_child_seed_differs_across_roots(self):
        assert Streams(1).child("search/x").seed != \
            Streams(2).child("search/x").seed


class TestSearchDriver:
    @pytest.fixture(autouse=True)
    def _smoke_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE)

    def test_budget_and_leaderboard_shape(self):
        cfg = SearchConfig(objective="tail_ratio", budget=5, seed=7,
                           elites=2)
        result = run_search(cfg)
        assert result.n_evals == 5
        assert len(result.leaderboard) == 5
        scores = [e["score"] for e in result.leaderboard]
        assert scores == sorted(scores, reverse=True)
        fps = [e["fingerprint"] for e in result.leaderboard]
        assert len(set(fps)) == 5
        assert result.best["fingerprint"] == fps[0]
        assert result.history  # at least one climb generation ran

    def test_search_is_jobs_invariant(self):
        """The acceptance criterion: byte-identical output serial vs
        parallel (dedup counts may differ only through scheduling — and
        they must not, because proposals are order-independent)."""
        dumps = []
        for jobs in (1, 2):
            cfg = SearchConfig(objective="tail_ratio", budget=6, seed=7,
                               jobs=jobs, elites=2)
            dumps.append(json.dumps(run_search(cfg).to_dict(),
                                    sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_distinct_seeds_explore_differently(self):
        boards = []
        for seed in (7, 8):
            cfg = SearchConfig(objective="tail_ratio", budget=4, seed=seed,
                               elites=2)
            boards.append([e["fingerprint"]
                           for e in run_search(cfg).leaderboard])
        assert boards[0] != boards[1]

    def test_tiny_space_dedups_instead_of_looping(self):
        """A space with few distinct points cannot fill a large budget;
        the driver must terminate with dedup hits, not spin forever.
        (Points must still be complete default-space vectors — the
        evaluator clamps against the real space — so this narrows every
        dimension to a single value except the two fabric booleans,
        leaving exactly 4 distinct candidates.)"""
        fixed = {
            "n_senders": 4, "threads_per_client": 2, "outstanding": 1,
            "req_size": 64, "large_size": 1024, "large_fraction": 0.0,
            "zipf_theta": 0.0, "handler_ns": 50.0,
            "qp_cache_entries": 256, "credit_batch": 16,
            "qps_per_handle": 1, "buffer_bytes": 65536,
            "dcqcn_rate_ai_gbps": 10.0, "dcqcn_min_rate_gbps": 1.0,
        }
        dims = []
        for name, value in fixed.items():
            if isinstance(value, int):
                dims.append(IntDim(name, value, value))
            else:
                dims.append(FloatDim(name, value, value))
        dims.extend([BoolDim("dcqcn"), BoolDim("pfc")])
        cfg = SearchConfig(objective="tail_ratio", budget=10, seed=7,
                           elites=2, space=SearchSpace(dims))
        result = run_search(cfg)
        assert result.n_evals <= 4  # |space| = 4
        assert result.n_dedup > 0

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            run_search(SearchConfig(budget=0))


class TestScorecardSearch:
    def _evaluation(self, **over):
        ev = {
            "fingerprint": "cafe0123cafe0123",
            "point": {"n_senders": 8},
            "score": 0.9,
            "baseline": {"mops": 40.0, "p99_us": 4.0},
            "scenario": {"mops": 4.0, "p99_us": 80.0},
            "goodput_retained": 0.1,
            "tail_ratio": 9.0,
            "anomalies": {"base": [], "cong": [{"kind": "changepoint"}]},
            "shift": [{"resource": "pfc_pause", "delta": 0.6,
                       "pre_share": 0.0, "post_share": 0.6},
                      {"resource": "cpu", "delta": 0.1,
                       "pre_share": 0.2, "post_share": 0.3}],
            "top_resource": "pfc_pause",
            "explanations": [{"note": "x"}],
        }
        ev.update(over)
        return ev

    def test_passing_scenario(self):
        sc = scorecard_search("unit", self._evaluation(),
                              objective="goodput_collapse",
                              expected_top_resource="pfc_pause",
                              max_goodput_retained=0.3)
        assert sc.passed, sc.format()
        names = {m["name"] for m in sc.to_dict()["metrics"]}
        assert {"baseline_mops", "scenario_mops", "goodput_retained",
                "tail_ratio", "scenario_p99_us", "score",
                "n_anomalies"} <= names
        assert sc.meta["search"]["top_resource"] == "pfc_pause"
        assert sc.meta["explanations"]

    def test_missing_anomaly_records_fail_when_expected(self):
        sc = scorecard_search(
            "unit", self._evaluation(anomalies={"base": [], "cong": []}))
        checks = {c["name"]: c["passed"] for c in sc.to_dict()["checks"]}
        assert checks["anomaly_detected"] is False
        assert not sc.passed

    def test_steady_pathology_gates_on_collapse_instead(self):
        sc = scorecard_search(
            "unit", self._evaluation(anomalies={"base": [], "cong": []}),
            expect_anomaly_records=False, max_goodput_retained=0.3)
        checks = {c["name"]: c["passed"] for c in sc.to_dict()["checks"]}
        assert "anomaly_detected" not in checks
        assert checks["goodput_collapses"] is True
        assert sc.passed

    def test_weak_shift_fails_explanation_check(self):
        sc = scorecard_search(
            "unit", self._evaluation(
                shift=[{"resource": "cpu", "delta": 0.01,
                        "pre_share": 0.2, "post_share": 0.21}],
                top_resource="cpu"))
        checks = {c["name"]: c["passed"] for c in sc.to_dict()["checks"]}
        assert checks["attribution_shift_present"] is False

    def test_expected_suspect_accepts_top3_membership(self):
        # pfc_pause is rank 2 but still a strong gainer: pathology intact.
        sc = scorecard_search(
            "unit", self._evaluation(
                shift=[{"resource": "cpu", "delta": 0.30,
                        "pre_share": 0.1, "post_share": 0.4},
                       {"resource": "pfc_pause", "delta": 0.28,
                        "pre_share": 0.0, "post_share": 0.28}],
                top_resource="cpu"),
            expected_top_resource="pfc_pause",
            max_goodput_retained=0.3)
        checks = {c["name"]: c["passed"] for c in sc.to_dict()["checks"]}
        assert checks["expected_suspect"] is True


class TestCuratedScenarios:
    def test_registry_shape(self):
        assert {"dcqcn_collapse", "pfc_pause_storm"} <= \
            set(CURATED_SCENARIOS)
        space = default_space()
        for scenario in CURATED_SCENARIOS.values():
            # Frozen points are complete, in-domain space vectors: the
            # clamp is the identity, so the committed baseline pins the
            # exact configuration the search evaluated.
            assert space.clamp(scenario.point) == scenario.point
            assert scenario.objective
            assert scenario.description


class TestSearchCli:
    def test_cli_json_identical_across_jobs(self, tmp_path, capsys):
        dumps = []
        for jobs, name in ((1, "serial.json"), (2, "parallel.json")):
            path = tmp_path / name
            main(["--scale", SMOKE, "--jobs", str(jobs),
                  "search", "--budget", "4", "--seed", "7",
                  "--elites", "2", "--explain-top", "1",
                  "--json", str(path),
                  "--store", str(tmp_path / ("store%d" % jobs))])
            capsys.readouterr()
            dumps.append(path.read_bytes())
        assert dumps[0] == dumps[1]
        payload = json.loads(dumps[0])
        assert payload["search"]["n_evals"] == 4
        assert payload["explanations"]

    def test_cli_export_scenario_writes_scorecard(self, tmp_path, capsys):
        rc = main(["--scale", SMOKE, "--scorecard", str(tmp_path),
                   "search", "--budget", "3", "--seed", "7",
                   "--elites", "2", "--explain-top", "0",
                   "--export-scenario", "unit_find:1",
                   "--store", str(tmp_path / "store")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "wrote scenario scorecard" in out
        written = list(tmp_path.glob("BENCH_search_unit_find.json"))
        assert len(written) == 1
        data = json.loads(written[0].read_text())
        assert data["meta"]["search"]["fingerprint"]
        assert "recorded search run" in out

    def test_cli_export_rank_out_of_range(self, tmp_path, capsys):
        rc = main(["--scale", SMOKE, "--scorecard", str(tmp_path),
                   "search", "--budget", "2", "--seed", "7",
                   "--explain-top", "0", "--no-record",
                   "--export-scenario", "oops:9"])
        assert rc == 1
        assert "out of range" in capsys.readouterr().out
