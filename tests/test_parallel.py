"""The parallel sweep executor: unit behaviour and the determinism
contract.

``run_sweep`` must be a drop-in replacement for a serial ``for`` loop:
results come back in input order, keyed by the point's stable identity,
and — the acceptance criterion — a ``jobs=N`` run is *bit-identical* to
a serial run for every benchmark sweep.  These tests pin both halves:
the executor mechanics (ordering, scrubbing, the telemetry-forces-serial
guard, ``REPRO_JOBS`` resolution) and end-to-end determinism on real
figure sweeps at smoke scale.
"""

import json
import os

import pytest

from repro.harness import MicrobenchConfig, run_flock, sweep_raw_reads
from repro.harness.cli import main
from repro.harness.incastbench import IncastConfig, run_incast
from repro.harness.parallel import (
    JOBS_ENV,
    SweepPoint,
    default_jobs,
    run_sweep,
)
from repro.harness.scorecards import scorecard_fig2a
from repro.obs import Telemetry, current_telemetry, disable, enable
from repro.sim.rand import Streams

SMOKE = "0.05"


# Module-level so SweepPoints pickle across the process boundary.
def _square(x):
    return x * x


def _pid_and_value(x):
    return (os.getpid(), x)


def _tiny_flock():
    return run_flock(MicrobenchConfig(n_clients=2, threads_per_client=2,
                                      outstanding=1))


class TestRunSweep:
    def test_results_in_input_order(self):
        points = [SweepPoint("p%d" % i, _square, (i,)) for i in range(7)]
        for jobs in (1, 4):
            assert run_sweep(points, jobs) == \
                [("p%d" % i, i * i) for i in range(7)]

    def test_parallel_actually_uses_workers(self):
        points = [SweepPoint("p%d" % i, _pid_and_value, (i,))
                  for i in range(4)]
        pids = {pid for _k, (pid, _v) in run_sweep(points, 4)}
        assert os.getpid() not in pids

    def test_single_point_stays_serial(self):
        [(_key, (pid, _v))] = run_sweep(
            [SweepPoint("only", _pid_and_value, (1,))], 4)
        assert pid == os.getpid()

    def test_telemetry_forces_serial(self):
        enable(Telemetry())
        try:
            points = [SweepPoint("p%d" % i, _pid_and_value, (i,))
                      for i in range(4)]
            pids = {pid for _k, (pid, _v) in run_sweep(points, 4)}
            assert pids == {os.getpid()}
        finally:
            disable()
        assert current_telemetry() is None

    def test_worker_results_are_telemetry_scrubbed(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE)
        points = [SweepPoint("r%d" % i, _tiny_flock) for i in range(2)]
        for _key, result in run_sweep(points, 2):
            assert result.telemetry is None
            assert result.ops > 0

    def test_metrics_only_telemetry_keeps_parallelism(self):
        """``wants_spans=False`` must not trip the forces-serial guard:
        points still fan out to worker processes."""
        enable(Telemetry(wants_spans=False))
        try:
            points = [SweepPoint("p%d" % i, _pid_and_value, (i,))
                      for i in range(4)]
            results = run_sweep(points, 4)
            pids = {pid for _k, (pid, _v) in results}
            assert os.getpid() not in pids
            assert [v for _k, (_pid, v) in results] == [0, 1, 2, 3]
        finally:
            disable()

    def test_metrics_merge_is_jobs_invariant(self, monkeypatch):
        """The parent registry after a metrics-only sweep is identical
        for jobs=1 and jobs=4: per-point registries merge in input
        order either way."""
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE)
        snapshots = []
        for jobs in (1, 4):
            tel = enable(Telemetry(wants_spans=False))
            try:
                points = [SweepPoint("r%d" % i, _tiny_flock)
                          for i in range(3)]
                run_sweep(points, jobs)
                snapshots.append(json.dumps(tel.metrics_snapshot(),
                                            sort_keys=True))
            finally:
                disable()
        assert snapshots[0] == snapshots[1]
        assert '"count"' in snapshots[0]  # histograms actually recorded


class TestDefaultJobs:
    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert default_jobs(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "6")
        assert default_jobs(None) == 6

    def test_bad_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "many")
        assert default_jobs(None) == 1

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert default_jobs(None) == 1
        assert default_jobs(0) == 1


class TestChildStreams:
    def test_child_is_pure_function_of_seed_and_id(self):
        root = Streams(42)
        a, b = root.child("fig2a/qps=88"), root.child("fig2a/qps=88")
        assert a.seed == b.seed
        assert a.stream("jitter").random() == b.stream("jitter").random()

    def test_distinct_ids_diverge(self):
        root = Streams(42)
        assert root.child("fig2a/qps=88").seed != \
            root.child("fig2a/qps=176").seed

    def test_child_seed_is_bounded(self):
        seed = Streams(2 ** 40).child("x" * 100).seed
        assert 0 <= seed < 2 ** 63


def _result_fingerprint(r):
    return (r.ops, r.duration_ns, tuple(r.latency), dict(r.extras),
            json.dumps(r.slo, sort_keys=True),
            json.dumps(r.anomalies, sort_keys=True))


class TestSweepDeterminism:
    """jobs=1 vs jobs=4 on real figure sweeps: bit-identical."""

    @pytest.fixture(autouse=True)
    def _smoke_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", SMOKE)

    def test_fig2a_metrics_and_scorecard(self):
        qps = [8, 16]
        serial = sweep_raw_reads(qps, n_clients=2, jobs=1)
        parallel = sweep_raw_reads(qps, n_clients=2, jobs=4)
        assert list(serial) == list(parallel) == qps
        for q in qps:
            assert _result_fingerprint(serial[q]) == \
                _result_fingerprint(parallel[q])
        def dump(res):
            d = scorecard_fig2a(res).to_dict()
            # Host timings are machine- and scheduling-dependent by
            # design; everything else must match bit-for-bit.
            host = d["meta"].pop("host")
            assert host["events"] > 0 and host["wall_s"] > 0
            return json.dumps(d, sort_keys=True)
        assert dump(serial) == dump(parallel)

    def test_incast_legs_and_retention(self):
        cfg = IncastConfig(n_senders=3, threads_per_client=2)
        serial = run_incast(cfg, jobs=1)
        parallel = run_incast(cfg, jobs=4)
        assert serial.keys() == parallel.keys()
        for leg in ("flock_base", "flock_cong", "ud_base", "ud_cong"):
            assert _result_fingerprint(serial[leg]) == \
                _result_fingerprint(parallel[leg])
        assert serial["flock_retention"] == parallel["flock_retention"]
        assert serial["ud_retention"] == parallel["ud_retention"]

    def test_cli_metrics_file_identical_across_jobs(self, tmp_path,
                                                    capsys):
        """``--metrics`` no longer forces telemetry off under --jobs:
        the merged counter/histogram dump is byte-identical for any
        worker count."""
        dumps = []
        for jobs, name in ((1, "serial.json"), (4, "parallel.json")):
            path = tmp_path / name
            main(["--scale", SMOKE, "--jobs", str(jobs),
                  "--metrics", str(path),
                  "fig2a", "--qps", "8", "16", "--clients", "2"])
            capsys.readouterr()
            dumps.append(path.read_bytes())
        assert dumps[0] == dumps[1]
        assert b'"count"' in dumps[0]

    def test_cli_slo_timeline_identical_across_jobs(self, tmp_path,
                                                    capsys):
        dumps = []
        for jobs, name in ((1, "s.json"), (4, "p.json")):
            path = tmp_path / name
            main(["--scale", SMOKE, "--jobs", str(jobs),
                  "--slo-timeline", str(path),
                  "fig2a", "--qps", "8", "16", "--clients", "2"])
            capsys.readouterr()
            dumps.append(path.read_bytes())
        assert dumps[0] == dumps[1]
        blocks = json.loads(dumps[0])
        assert blocks  # one timeline per sweep point
        assert all("windows" in block for block in blocks.values())

    def test_cli_attribution_table_identical(self, capsys):
        """Observability runs are forced serial, so ``--jobs`` may never
        change an attribution table — not even its formatting."""
        argv = ["--scale", SMOKE, "--attribution",
                "fig2a", "--qps", "8", "--clients", "2"]
        main(argv)
        serial_out = capsys.readouterr().out
        main(["--jobs", "4"] + argv)
        parallel_out = capsys.readouterr().out
        assert serial_out == parallel_out
        assert "attribution" in serial_out.lower()
