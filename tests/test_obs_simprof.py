"""Cost observatory: event census, host profiler, occupancy timelines.

Covers the three instruments end to end on tiny simulations plus the
PR's structural guarantees: callback classification and census
windowing in :class:`SimProfile`, level/busy/sample integration in
:class:`OccupancyTracker`, virtual-time identity of ``run_profiled``
versus ``run``, and — the gating audit — that every component occupancy
hook hides behind a cached ``self._occ`` None test while the PR-5 fast
path (``Simulator.run``) carries zero observatory code.
"""

import inspect
import json
import os
import pathlib
import re

import pytest

from repro.harness import MicrobenchConfig, run_flock
from repro.obs.occupancy import OCCUPANCY_ENV, OccupancyTracker, occupancy_enabled
from repro.obs.simprof import (
    PROFILE_ENV,
    SimProfile,
    component_bucket,
    profile_enabled,
)
from repro.obs.windows import SloThresholds, SloTimeline
from repro.sim.core import Simulator

SRC = pathlib.Path(__file__).resolve().parents[1] / "src" / "repro"


# -- workload helpers (defined here, so their bucket is ``app``) ---------

def _ticker(sim, period, count):
    for _ in range(count):
        yield sim.timeout(period)


def _noop(_event):
    pass


class TestComponentBucket:
    CASES = [
        ("/x/src/repro/net/fabric.py", "fabric"),
        ("/x/src/repro/net/transport.py", "fabric"),
        ("/x/src/repro/net/flow.py", "flow"),
        ("/x/src/repro/net/fidelity.py", "flow"),
        ("/x/src/repro/net/congestion/switch.py", "switch"),
        ("/x/src/repro/hw/rnic.py", "rnic"),
        ("/x/src/repro/hw/pcie.py", "pcie"),
        ("/x/src/repro/verbs/cq.py", "cq"),
        ("/x/src/repro/verbs/qp.py", "verbs"),
        ("/x/src/repro/flock/credits.py", "credits"),
        ("/x/src/repro/flock/rpc.py", "flock"),
        ("/x/src/repro/sim/core.py", "kernel"),
        ("/x/src/repro/harness/microbench.py", "app"),
        ("/tmp/tests/test_something.py", "app"),
    ]

    @pytest.mark.parametrize("path,want", CASES)
    def test_mapping(self, path, want):
        assert component_bucket(path) == want

    def test_windows_separators(self):
        assert component_bucket(r"C:\x\repro\net\fabric.py") == "fabric"

    def test_every_real_module_lands_in_a_named_bucket(self):
        for path in SRC.rglob("*.py"):
            assert component_bucket(str(path)) != "other"


class TestEnvSwitches:
    def test_profile_default_off(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profile_enabled()
        assert profile_enabled(default=True)

    @pytest.mark.parametrize("raw,want", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("off", False), ("", False),
    ])
    def test_profile_env_values(self, monkeypatch, raw, want):
        monkeypatch.setenv(PROFILE_ENV, raw)
        assert profile_enabled() is want

    def test_occupancy_zero_disables_even_with_default_true(self, monkeypatch):
        monkeypatch.setenv(OCCUPANCY_ENV, "0")
        assert not occupancy_enabled(default=True)


class TestSimProfile:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            SimProfile(5.0, 5.0)

    def _profiled_run(self, until=320.0):
        sim = Simulator()
        sim.spawn(_ticker(sim, 10.0, 30))
        sim.timeout(5.0).add_callback(_noop)      # -> app;timer
        ev = sim.event()
        ev.add_callback(_noop)                    # -> app;callback
        ev.succeed(delay=7.0)
        prof = SimProfile(100.0, 200.0, n_windows=4)
        sim.run_profiled(prof, until=until)
        return sim, prof

    def test_classification_and_shares(self):
        sim, prof = self._profiled_run()
        assert "app;process" in prof.dispatched
        assert "app;callback" in prof.dispatched
        assert "app;timer" in prof.dispatched
        assert prof.total_dispatched == sim.events_processed
        report = prof.report()
        shares = [b["share"] for b in report["host"]["buckets"]]
        assert abs(sum(shares) - 1.0) < 1e-6
        assert report["host"]["total_ns"] > 0

    def test_census_covers_measure_span_only(self):
        _sim, prof = self._profiled_run()
        report = prof.report()
        census = report["census"]
        # ticker resumes at 100..190 inside [100, 200): 10 events.
        windowed = sum(w["events"] for w in census["windows"])
        assert windowed == 10
        assert len(census["windows"]) == 4
        for w in census["windows"]:
            assert w["t1_ns"] - w["t0_ns"] == pytest.approx(25.0)
        # phases partition the dispatch count.
        phases = report["phases"]
        assert phases["measure"]["events"] == 10
        total = sum(p["events"] for p in phases.values())
        assert total == prof.total_dispatched

    def test_bare_timeout_is_a_timer(self):
        sim = Simulator()
        sim.timeout(1.0)
        prof = SimProfile(0.0, 10.0, n_windows=2)
        sim.run_profiled(prof, until=10.0)
        assert prof.dispatched.get("timers;timer") == 1

    def test_leftovers_counted_cancelled_and_finish_idempotent(self):
        sim = Simulator()
        sim.spawn(_ticker(sim, 10.0, 10))
        prof = SimProfile(0.0, 25.0, n_windows=2)
        sim.run_profiled(prof, until=25.0)
        prof.finish(sim)
        cancelled = dict(prof.cancelled)
        assert sum(cancelled.values()) >= 1
        prof.finish(sim)  # idempotent: no double count
        assert prof.cancelled == cancelled
        report = prof.report()
        assert report["census"]["scheduled"] == \
            report["census"]["dispatched"] + report["census"]["cancelled"]

    def test_dominant_component(self):
        _sim, prof = self._profiled_run()
        comp, share = prof.dominant_component()
        assert comp == "app"
        assert 0.0 < share <= 1.0

    def test_folded_export_format(self):
        _sim, prof = self._profiled_run()
        lines = prof.folded().splitlines()
        assert lines
        for line in lines:
            stack, _sep, weight = line.rpartition(" ")
            assert stack.startswith("sim;")
            assert len(stack.split(";")) == 3
            assert int(weight) >= 0

    def test_report_is_json_serializable(self):
        _sim, prof = self._profiled_run()
        blob = json.dumps(prof.report(), sort_keys=True)
        assert "dominant_component" in blob


class TestRunProfiledIdentity:
    """``run_profiled`` must replay ``run``'s event order exactly."""

    @staticmethod
    def _workload(sim, log):
        def cb(event):
            log.append(("cb", sim.now, event.value))
        for i, delay in enumerate((3.0, 1.0, 1.0, 7.0)):
            sim.timeout(delay, value=i).add_callback(cb)

        def proc(sim):
            for _ in range(5):
                yield sim.timeout(2.0)
                log.append(("proc", sim.now))
        sim.spawn(proc(sim))

    def _trace(self, profiled):
        sim = Simulator()
        log = []
        self._workload(sim, log)
        if profiled:
            sim.run_profiled(SimProfile(0.0, 20.0), until=20.0)
        else:
            sim.run(until=20.0)
        return log, sim.now, sim.events_processed

    def test_same_virtual_trace(self):
        assert self._trace(False) == self._trace(True)

    def test_until_none_drains(self):
        sim = Simulator()
        log = []
        self._workload(sim, log)
        sim.run_profiled(SimProfile(0.0, 20.0))
        ref = Simulator()
        ref_log = []
        self._workload(ref, ref_log)
        ref.run()
        assert log == ref_log
        assert sim.now == ref.now

    def test_past_until_rejected(self):
        sim = Simulator()
        sim.run(until=5.0)
        with pytest.raises(Exception):
            sim.run_profiled(SimProfile(0.0, 1.0), until=1.0)


class TestOccupancyTracker:
    def test_empty_span_rejected(self):
        with pytest.raises(ValueError):
            OccupancyTracker(10.0, 10.0)

    def test_level_integration_is_exact(self):
        occ = OccupancyTracker(0.0, 100.0, n_windows=4)
        occ.add("x", 0.0, 2.0, capacity=4.0)
        occ.add("x", 50.0, -1.0)
        occ.finish(100.0)
        [row] = occ.report()["series"]
        assert row["name"] == "x" and row["kind"] == "level"
        assert row["mean"] == [2.0, 2.0, 1.0, 1.0]
        # the drop lands exactly on the window-2 boundary, so level 2
        # never overlaps window 2 and its peak is the new level.
        assert row["peak"] == [2.0, 2.0, 1.0, 1.0]
        assert row["busy_frac"] == [0.5, 0.5, 0.25, 0.25]

    def test_set_level(self):
        occ = OccupancyTracker(0.0, 40.0, n_windows=2)
        occ.set_level("qps", 0.0, 3.0, capacity=6.0)
        occ.set_level("qps", 20.0, 6.0)
        occ.finish(40.0)
        [row] = occ.report()["series"]
        assert row["mean"] == [3.0, 6.0]
        assert row["busy_frac"] == [0.5, 1.0]

    def test_busy_intervals_clip_to_span(self):
        occ = OccupancyTracker(0.0, 100.0, n_windows=4)
        occ.busy("port", 10.0, 30.0)
        occ.busy("port", -20.0, 10.0)   # clipped to [0, 10)
        occ.busy("port", 95.0, 140.0)   # clipped to [95, 100)
        occ.busy("port", 60.0, 60.0)    # empty: ignored
        occ.finish(100.0)
        [row] = occ.report()["series"]
        assert row["kind"] == "busy" and row["capacity"] == 1.0
        assert row["busy_frac"] == [1.0, 0.2, 0.0, 0.2]

    def test_samples_and_empty_window_means(self):
        occ = OccupancyTracker(0.0, 40.0, n_windows=2)
        occ.sample("depth", 5.0, 4.0)
        occ.sample("depth", 6.0, 8.0)
        occ.sample("depth", 45.0, 99.0)  # outside span: dropped
        occ.finish(40.0)
        [row] = occ.report()["series"]
        assert row["kind"] == "sample"
        assert row["mean"] == [6.0, None]
        assert row["peak"] == [8.0, 0.0]

    def test_finish_is_idempotent(self):
        occ = OccupancyTracker(0.0, 10.0, n_windows=1)
        occ.add("x", 0.0, 1.0)
        occ.finish(10.0)
        occ.finish(10.0)
        [row] = occ.report()["series"]
        assert row["mean"] == [1.0]

    def test_report_is_json_serializable(self):
        occ = OccupancyTracker(0.0, 10.0, n_windows=2)
        occ.sample("d", 1.0, 2.0)
        occ.busy("p", 0.0, 5.0)
        occ.finish(10.0)
        blob = json.dumps(occ.report(), sort_keys=True)
        assert '"series"' in blob


class TestSloTimelineEdges:
    """Satellite: window-machinery edge cases the census rides on."""

    def test_zero_width_span_rejected(self):
        with pytest.raises(ValueError, match="empty SLO window span"):
            SloTimeline(7.0, 7.0, thresholds=SloThresholds())
        with pytest.raises(ValueError, match="empty SLO window span"):
            SloTimeline(7.0, 3.0, thresholds=SloThresholds())

    def test_run_ending_mid_window(self):
        tl = SloTimeline(0.0, 80.0, n_windows=8,
                         thresholds=SloThresholds())
        for t in (5.0, 15.0, 25.0):  # run dies a third of the way in
            tl.observe(t, 1000.0)
        report = tl.report()
        assert len(report["windows"]) == 8
        assert [w["ops"] for w in report["windows"]] == \
            [1, 1, 1, 0, 0, 0, 0, 0]
        for w in report["windows"][3:]:
            assert w["goodput_mops"] == 0.0

    def test_windows_with_no_samples_have_none_percentiles(self):
        tl = SloTimeline(0.0, 40.0, n_windows=4,
                         thresholds=SloThresholds())
        tl.observe(25.0, 2000.0)
        report = tl.report()
        rows = report["windows"]
        assert rows[2]["p50_us"] is not None
        for idx in (0, 1, 3):
            assert rows[idx]["p50_us"] is None
            assert rows[idx]["p99_us"] is None
            assert rows[idx]["p999_us"] is None
        json.dumps(report)  # Nones must stay JSON-safe


class TestGatingAudit:
    """Satellite: obs-off gating — every occupancy hook is fenced, and
    the PR-5 fast path carries zero observatory code."""

    #: components expected to carry occupancy hooks.
    HOOKED = {
        "net/fabric.py", "net/congestion/switch.py", "hw/rnic.py",
        "hw/pcie.py", "verbs/cq.py", "flock/credits.py", "flock/rpc.py",
    }

    def _hooked_files(self):
        found = {}
        for path in SRC.rglob("*.py"):
            rel = path.relative_to(SRC).as_posix()
            if rel.startswith("obs/") or rel.startswith("harness/"):
                continue
            text = path.read_text()
            if "self._occ" in text:
                found[rel] = text
        return found

    def test_expected_components_are_hooked(self):
        assert set(self._hooked_files()) == self.HOOKED

    def test_every_hook_site_is_gated(self):
        for rel, text in self._hooked_files().items():
            # the cached reference comes from sim.occupancy...
            assert re.search(r"self\._occ\s*=\s*\w+\.occupancy", text), (
                "%s: _occ not cached from sim.occupancy" % rel)
            # ...and at least one is-None fence guards its use.
            assert re.search(r"\b(?:self\._occ|occ) is not None", text), (
                "%s: occupancy hook not gated on is-not-None" % rel)

    def test_fast_path_source_has_no_observatory_code(self):
        src = inspect.getsource(Simulator.run)
        for token in ("occupancy", "profile", "_occ", "perf_counter"):
            assert token not in src, (
                "Simulator.run grew %r — the PR-5 fast path must stay "
                "byte-identical with profiling off" % token)


class TestHarnessIntegration:
    """Profiling on vs off: same simulation, extra report."""

    CFG = dict(n_clients=2, threads_per_client=2, outstanding=1)

    @pytest.fixture(autouse=True)
    def _smoke(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.05")

    def _fingerprint(self, r):
        return (r.ops, r.duration_ns, tuple(r.latency), dict(r.extras),
                json.dumps(r.slo, sort_keys=True))

    def test_profiled_run_is_virtually_identical(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        monkeypatch.delenv(OCCUPANCY_ENV, raising=False)
        plain = run_flock(MicrobenchConfig(**self.CFG))
        assert plain.profile is None
        monkeypatch.setenv(PROFILE_ENV, "1")
        monkeypatch.setenv(OCCUPANCY_ENV, "1")
        profiled = run_flock(MicrobenchConfig(**self.CFG))
        assert self._fingerprint(plain) == self._fingerprint(profiled)
        report = profiled.profile
        assert report is not None
        shares = [b["share"] for b in report["host"]["buckets"]]
        assert abs(sum(shares) - 1.0) < 1e-6
        occ = report["occupancy"]
        assert occ["n_windows"] == report["n_windows"]
        names = {row["name"] for row in occ["series"]}
        assert "flock.credits.available" in names

    def test_occupancy_only_mode(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        monkeypatch.setenv(OCCUPANCY_ENV, "1")
        result = run_flock(MicrobenchConfig(**self.CFG))
        assert result.profile is not None
        assert set(result.profile) == {"occupancy"}

    def test_host_block_always_present(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        monkeypatch.delenv(OCCUPANCY_ENV, raising=False)
        result = run_flock(MicrobenchConfig(**self.CFG))
        host = result.host
        assert host["events"] > 0
        assert host["wall_s"] > 0
        assert host["events_per_sec"] > 0
        # host cost never leaks into the determinism fingerprint.
        assert "wall_s" not in result.extras
