"""The queryable run-history store and its ``runs`` CLI front-end.

Unit half: record/list/get/diff/query on a tmp-path store with
hand-built scorecards — append-only ids, git context, config
fingerprints, tolerance-aware regression detection (improvements never
gate, only run A's tolerances do).  CLI half: the exit-code contract CI
leans on — ``runs diff`` returns 0 on a clean diff and nonzero on a
regression or a bad reference, without a traceback.
"""

import json
import os

import pytest

from repro.harness.cli import main
from repro.obs.runstore import (
    RUNSTORE_DIR_ENV,
    RunStore,
    config_fingerprint,
    default_store_dir,
    git_context,
)
from repro.obs.scorecard import Scorecard


def make_scorecard(figure="figX", mops=10.0, check_ok=True, scale=1.0):
    sc = Scorecard(figure=figure, title="test figure")
    sc.add_metric("mops", mops, better="higher", rtol=0.05)
    sc.add_metric("p99_us", 5.0, better="lower", rtol=0.10)
    sc.add_check("shape_holds", check_ok)
    sc.meta["bench_scale"] = scale
    return sc


@pytest.fixture
def store(tmp_path):
    return RunStore(str(tmp_path / "rs"))


class TestRecord:
    def test_ids_are_appended_line_numbers(self, store):
        assert store.record([make_scorecard()]).run_id == 1
        assert store.record([make_scorecard()]).run_id == 2
        assert [r.run_id for r in store.list()] == [1, 2]

    def test_append_only(self, store):
        store.record([make_scorecard(mops=1.0)], label="first")
        with open(store.path) as fh:
            first_line = fh.readline()
        store.record([make_scorecard(mops=2.0)], label="second")
        with open(store.path) as fh:
            assert fh.readline() == first_line

    def test_store_dir_is_gitignored(self, store):
        store.record([make_scorecard()])
        with open(os.path.join(store.root, ".gitignore")) as fh:
            assert fh.read().strip() == "*"

    def test_git_context_recorded(self, store):
        rec = store.record([make_scorecard()])
        # The test runs inside the repo, so a real commit is captured.
        assert rec.git["commit"]
        assert len(rec.git["commit"]) == 40

    def test_git_context_degrades_outside_repo(self, tmp_path):
        ctx = git_context(str(tmp_path))
        assert ctx == {"commit": None, "branch": None, "dirty": None}

    def test_fingerprint_tracks_run_shape(self):
        a = [make_scorecard("fig2a"), make_scorecard("fig6")]
        b = [make_scorecard("fig6"), make_scorecard("fig2a")]  # order-free
        c = [make_scorecard("fig2a")]
        d = [make_scorecard("fig2a", scale=0.05)]
        assert config_fingerprint(a) == config_fingerprint(b)
        assert config_fingerprint(a) != config_fingerprint(c)
        assert config_fingerprint(c) != config_fingerprint(d)

    def test_record_roundtrips_through_jsonl(self, store):
        store.record([make_scorecard(mops=33.0)], label="nightly",
                     meta={"host": "ci"}, timestamp=1_700_000_000.0)
        rec = store.get(1)
        assert rec.label == "nightly"
        assert rec.meta == {"host": "ci"}
        assert rec.timestamp == 1_700_000_000.0
        assert rec.metric("figX", "mops") == 33.0
        assert rec.passed


class TestGet:
    def test_reference_forms(self, store):
        store.record([make_scorecard()])
        assert store.get(1).run_id == 1
        assert store.get("1").run_id == 1
        assert store.get("run:1").run_id == 1

    def test_latest_and_negative_references(self, store):
        store.record([make_scorecard()])
        store.record([make_scorecard()])
        store.record([make_scorecard()])
        assert store.get("latest").run_id == 3
        assert store.get("run:latest").run_id == 3
        assert store.get(-1).run_id == 3
        assert store.get("-1").run_id == 3
        assert store.get("run:-2").run_id == 2

    def test_negative_reference_past_history_raises(self, store):
        store.record([make_scorecard()])
        with pytest.raises(KeyError):
            store.get(-2)

    def test_latest_on_empty_store_raises(self, store):
        with pytest.raises(KeyError):
            store.get("latest")

    def test_unknown_id_raises(self, store):
        with pytest.raises(KeyError):
            store.get(99)

    def test_garbage_reference_raises(self, store):
        with pytest.raises(KeyError):
            store.get("nightly-4")


class TestDiff:
    def test_self_diff_is_clean(self, store):
        store.record([make_scorecard()])
        report = store.diff(1, 1)
        assert report.ok
        assert not any(d.regression for d in report.deltas)

    def test_regression_detected(self, store):
        store.record([make_scorecard(mops=10.0)])
        store.record([make_scorecard(mops=8.0)])  # -20% >> 5% rtol
        report = store.diff(1, 2)
        assert not report.ok
        assert any(d.regression and d.name == "mops"
                   for d in report.deltas)

    def test_improvement_never_gates(self, store):
        store.record([make_scorecard(mops=10.0)])
        store.record([make_scorecard(mops=20.0)])
        assert store.diff(1, 2).ok

    def test_within_tolerance_is_clean(self, store):
        store.record([make_scorecard(mops=10.0)])
        store.record([make_scorecard(mops=9.7)])  # -3% < 5% rtol
        assert store.diff(1, 2).ok

    def test_check_regression_gates(self, store):
        store.record([make_scorecard(check_ok=True)])
        store.record([make_scorecard(check_ok=False)])
        report = store.diff(1, 2)
        assert not report.ok
        assert report.failed_checks

    def test_figure_missing_from_b_is_a_skip(self, store):
        store.record([make_scorecard("fig2a"), make_scorecard("fig6")])
        store.record([make_scorecard("fig2a")])
        report = store.diff(1, 2)
        assert report.ok
        assert any("fig6" in s for s in report.skipped)

    def test_scale_mismatch_skips_not_gates(self, store):
        store.record([make_scorecard(scale=1.0)])
        store.record([make_scorecard(mops=1.0, scale=0.05)])
        report = store.diff(1, 2)
        assert report.ok
        assert report.skipped

    def test_anomaly_drift_flagged_but_never_gates(self, store):
        anomaly = {"kind": "changepoint", "figure": "figX",
                   "series": "flock", "metric": "p99_us", "x": 4.0,
                   "span": [100.0, 200.0], "direction": "rise",
                   "severity": 0.5, "detail": "", "evidence": {}}
        a = make_scorecard()
        b = make_scorecard()
        b.meta["anomalies"] = {"runs": {"flock": [anomaly]}}
        store.record([a])
        store.record([b])
        report = store.diff(1, 2)
        assert report.ok  # informational, not a gate
        assert any("new" in flag and "p99_us" in flag
                   for flag in report.anomaly_flags)
        assert "anomaly" in report.format()
        # The reverse direction reports the anomaly as vanished.
        back = store.diff(2, 1)
        assert any("vanished" in flag for flag in back.anomaly_flags)


class TestQuery:
    @pytest.fixture
    def seeded(self, store):
        store.record([make_scorecard("fig2a", mops=40.0)], label="nightly")
        store.record([make_scorecard("fig2a", mops=50.0),
                      make_scorecard("fig6", mops=25.0)], label="pr")
        store.record([make_scorecard("fig2a", mops=30.0,
                                     check_ok=False)], label="nightly")
        return store

    def test_field_matches(self, seeded):
        assert [r.run_id for r in seeded.query(["label=nightly"])] == [1, 3]
        assert [r.run_id for r in seeded.query(["figure=fig6"])] == [2]
        assert [r.run_id for r in seeded.query(["passed=false"])] == [3]

    def test_commit_prefix_match(self, seeded):
        prefix = seeded.get(1).git["commit"][:8]
        assert len(seeded.query(["commit=%s" % prefix])) == 3

    def test_metric_expressions(self, seeded):
        assert [r.run_id for r in
                seeded.query(["fig2a.mops>=40"])] == [1, 2]
        assert [r.run_id for r in
                seeded.query(["fig2a.mops<35"])] == [3]
        assert [r.run_id for r in
                seeded.query(["fig6.mops==25"])] == [2]

    def test_conjunction(self, seeded):
        assert [r.run_id for r in
                seeded.query(["label=nightly", "fig2a.mops>35"])] == [1]

    def test_missing_metric_never_matches(self, seeded):
        assert seeded.query(["fig9.mops>0"]) == []

    def test_bad_expression_raises(self, seeded):
        with pytest.raises(ValueError):
            seeded.query(["no-operator-here"])
        with pytest.raises(ValueError):
            seeded.query(["bogusfield=3"])


class TestDefaultDir:
    def test_env_override_wins(self, monkeypatch, tmp_path):
        monkeypatch.setenv(RUNSTORE_DIR_ENV, str(tmp_path))
        assert default_store_dir() == str(tmp_path)

    def test_default_is_in_benchmarks(self, monkeypatch):
        monkeypatch.delenv(RUNSTORE_DIR_ENV, raising=False)
        assert default_store_dir().endswith(
            os.path.join("benchmarks", "runstore"))


class TestRunsCli:
    """Exit-code contract: 0 clean, 1 on regression or bad input."""

    @pytest.fixture(autouse=True)
    def _isolated_store(self, monkeypatch, tmp_path):
        monkeypatch.setenv(RUNSTORE_DIR_ENV, str(tmp_path / "store"))
        self.tmp = tmp_path

    def _scorecard_dir(self, name, mops):
        d = self.tmp / name
        d.mkdir()
        sc = make_scorecard("fig2a", mops=mops)
        with open(d / "BENCH_fig2a.json", "w") as fh:
            json.dump(sc.to_dict(), fh)
        return str(d)

    def test_list_empty_store(self, capsys):
        assert main(["runs", "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_record_list_show(self, capsys):
        d = self._scorecard_dir("clean", 10.0)
        assert main(["runs", "record", d, "--label", "clean"]) == 0
        assert main(["runs", "list"]) == 0
        assert main(["runs", "show", "1"]) == 0
        out = capsys.readouterr().out
        assert "recorded run 1" in out
        assert "clean" in out
        assert "fig2a" in out

    def test_record_empty_dir_fails(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["runs", "record", str(empty)]) == 1

    def test_diff_exit_codes(self, capsys):
        main(["runs", "record", self._scorecard_dir("clean", 10.0)])
        main(["runs", "record", self._scorecard_dir("bad", 7.0)])
        assert main(["runs", "diff", "1", "1"]) == 0
        assert main(["runs", "diff", "1", "2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bad_reference_is_an_error_not_a_traceback(self, capsys):
        assert main(["runs", "show", "42"]) == 1
        assert main(["runs", "diff", "1", "2"]) == 1
        assert "no run" in capsys.readouterr().out

    def test_query_cli(self, capsys):
        main(["runs", "record", self._scorecard_dir("clean", 10.0),
              "--label", "nightly"])
        assert main(["runs", "query", "label=nightly"]) == 0
        assert main(["runs", "query", "label=other"]) == 0
        out = capsys.readouterr().out
        assert "nightly" in out
        assert "no runs match" in out

    def test_store_flag_overrides_env(self, capsys):
        other = self.tmp / "elsewhere"
        d = self._scorecard_dir("clean", 10.0)
        assert main(["runs", "--store", str(other), "record", d]) == 0
        assert (other / "runs.jsonl").exists()
