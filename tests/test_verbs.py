"""Verbs layer: Table 1 semantics, QP behaviour, CQs, completions."""

import pytest

from repro.config import ClusterConfig
from repro.net import build_cluster
from repro.sim import Simulator
from repro.verbs import (
    Completion,
    CompletionQueue,
    QueuePair,
    Transport,
    Verb,
    VerbError,
    WcStatus,
    WorkRequest,
    capability_table,
    max_message_size,
    supports,
)

from conftest import run_gen


class TestTransportMatrix:
    """Paper Table 1, verbatim."""

    def test_rc_supports_everything(self):
        for verb in Verb:
            assert supports(Transport.RC, verb)

    def test_uc_no_read_no_atomic(self):
        assert not supports(Transport.UC, Verb.READ)
        assert not supports(Transport.UC, Verb.FETCH_ADD)
        assert not supports(Transport.UC, Verb.CMP_SWAP)
        assert supports(Transport.UC, Verb.WRITE)
        assert supports(Transport.UC, Verb.SEND)

    def test_ud_send_recv_only(self):
        assert supports(Transport.UD, Verb.SEND)
        assert supports(Transport.UD, Verb.RECV)
        for verb in (Verb.WRITE, Verb.WRITE_IMM, Verb.READ,
                     Verb.FETCH_ADD, Verb.CMP_SWAP):
            assert not supports(Transport.UD, verb)

    def test_mtu_limits(self):
        assert max_message_size(Transport.RC) == 2 * 1024 ** 3
        assert max_message_size(Transport.UC) == 2 * 1024 ** 3
        assert max_message_size(Transport.UD) == 4096

    def test_reliability_column(self):
        assert Transport.RC.reliable
        assert not Transport.UC.reliable
        assert not Transport.UD.reliable

    def test_connectedness(self):
        assert Transport.RC.connected and Transport.UC.connected
        assert not Transport.UD.connected

    def test_capability_table_shape(self):
        table = capability_table()
        assert set(table) == {"RC", "UC", "UD"}
        assert table["RC"]["atomic"] and not table["UD"]["atomic"]
        assert table["UD"]["max_msg"] == 4096


@pytest.fixture
def rc_pair(small_cluster):
    sim, server, clients, fabric = small_cluster
    sqp = QueuePair(sim, server, fabric, Transport.RC)
    cqp = QueuePair(sim, clients[0], fabric, Transport.RC)
    cqp.connect(sqp)
    return sim, server, clients[0], fabric, cqp, sqp


class TestConnection:
    def test_ud_connect_rejected(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        a = QueuePair(sim, clients[0], fabric, Transport.UD)
        b = QueuePair(sim, server, fabric, Transport.UD)
        with pytest.raises(VerbError):
            a.connect(b)

    def test_transport_mismatch_rejected(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        a = QueuePair(sim, clients[0], fabric, Transport.RC)
        b = QueuePair(sim, server, fabric, Transport.UC)
        with pytest.raises(VerbError):
            a.connect(b)

    def test_double_connect_rejected(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        other = QueuePair(sim, server, fabric, Transport.RC)
        with pytest.raises(VerbError):
            cqp.connect(other)

    def test_send_without_connection_rejected(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        qp = QueuePair(sim, clients[0], fabric, Transport.RC)
        with pytest.raises(VerbError):
            qp.post_send(WorkRequest(verb=Verb.SEND, length=8))

    def test_destroy_invalidates_cache_and_peer(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        cqp.destroy()
        assert sqp.remote is None
        with pytest.raises(VerbError):
            cqp.post_send(WorkRequest(verb=Verb.SEND, length=8))


class TestSendRecv:
    def test_send_delivers_payload(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        sqp.post_recv(4096, n=1)

        def proc():
            wc = yield cqp.post_send(WorkRequest(verb=Verb.SEND, length=64,
                                                 payload={"k": 1}))
            return wc

        wc = run_gen(sim, proc())
        assert wc.ok
        rx = sqp.recv_cq.poll()
        assert len(rx) == 1
        assert rx[0].payload == {"k": 1}
        assert rx[0].src == (client.name, cqp.qpn)

    def test_rc_send_waits_for_recv_buffer(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        done_at = []

        def sender():
            yield cqp.post_send(WorkRequest(verb=Verb.SEND, length=64))
            done_at.append(sim.now)

        def receiver():
            yield sim.timeout(50_000)
            sqp.post_recv(4096)

        sim.spawn(sender())
        sim.spawn(receiver())
        sim.run()
        assert done_at and done_at[0] >= 50_000  # RNR-blocked until posted

    def test_ud_drop_without_recv_buffer(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        src = QueuePair(sim, clients[0], fabric, Transport.UD)
        dst = QueuePair(sim, server, fabric, Transport.UD)

        def proc():
            wc = yield src.post_send(
                WorkRequest(verb=Verb.SEND, length=64), remote=dst)
            return wc

        wc = run_gen(sim, proc())
        assert wc.ok  # UD sender never learns
        assert dst.recv_drops == 1
        assert len(dst.recv_cq) == 0

    def test_ud_size_limit(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        src = QueuePair(sim, clients[0], fabric, Transport.UD)
        dst = QueuePair(sim, server, fabric, Transport.UD)
        with pytest.raises(VerbError):
            src.post_send(WorkRequest(verb=Verb.SEND, length=8192),
                          remote=dst)

    def test_ud_requires_remote(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        src = QueuePair(sim, clients[0], fabric, Transport.UD)
        with pytest.raises(VerbError):
            src.post_send(WorkRequest(verb=Verb.SEND, length=64))

    def test_unsupported_verb_rejected(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        src = QueuePair(sim, clients[0], fabric, Transport.UD)
        dst = QueuePair(sim, server, fabric, Transport.UD)
        with pytest.raises(VerbError):
            src.post_send(WorkRequest(verb=Verb.READ, length=8), remote=dst)


class TestOneSided:
    def test_write_hits_sink(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)
        landed = []
        region.sink = lambda payload, addr, length: landed.append(
            (payload, addr, length))

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=128, remote_addr=region.addr,
                rkey=region.rkey, payload="data"))
            return wc

        wc = run_gen(sim, proc())
        assert wc.ok
        assert landed == [("data", region.addr, 128)]

    def test_write_out_of_bounds_fails(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(64)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=128, remote_addr=region.addr,
                rkey=region.rkey))
            return wc

        wc = run_gen(sim, proc())
        assert not wc.ok
        assert wc.status == WcStatus.REM_ACCESS_ERR

    def test_write_permission_enforced(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096, remote_write=False)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=8, remote_addr=region.addr,
                rkey=region.rkey))
            return wc

        assert not run_gen(sim, proc()).ok

    def test_write_imm_raises_remote_completion(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE_IMM, length=16, remote_addr=region.addr,
                rkey=region.rkey, imm=0xBEEF, payload="ctl"))
            return wc

        assert run_gen(sim, proc()).ok
        rx = sqp.recv_cq.poll()
        assert len(rx) == 1
        assert rx[0].imm == 0xBEEF and rx[0].payload == "ctl"

    def test_read_returns_word(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)
        region.words[region.addr + 16] = 777

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.READ, length=8, remote_addr=region.addr + 16,
                rkey=region.rkey))
            return wc

        wc = run_gen(sim, proc())
        assert wc.ok and wc.payload == 777

    def test_read_permission_enforced(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(64, remote_read=False)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.READ, length=8, remote_addr=region.addr,
                rkey=region.rkey))
            return wc

        assert not run_gen(sim, proc()).ok

    def test_read_has_full_rtt_latency(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)

        def proc():
            yield cqp.post_send(WorkRequest(
                verb=Verb.READ, length=8, remote_addr=region.addr,
                rkey=region.rkey))
            return sim.now

        elapsed = run_gen(sim, proc())
        one_way = fabric.cfg.propagation_ns
        assert elapsed >= 2 * one_way


class TestAtomics:
    def test_fetch_add_sequence(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)
        olds = []

        def proc():
            for _ in range(3):
                wc = yield cqp.post_send(WorkRequest(
                    verb=Verb.FETCH_ADD, length=8, remote_addr=region.addr,
                    rkey=region.rkey, swap_or_add=10))
                olds.append(wc.payload)

        run_gen(sim, proc())
        assert olds == [0, 10, 20]
        assert region.words[region.addr] == 30

    def test_cmp_swap_success_and_failure(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)
        region.words[region.addr] = 5

        def proc():
            wc1 = yield cqp.post_send(WorkRequest(
                verb=Verb.CMP_SWAP, length=8, remote_addr=region.addr,
                rkey=region.rkey, compare=5, swap_or_add=9))
            wc2 = yield cqp.post_send(WorkRequest(
                verb=Verb.CMP_SWAP, length=8, remote_addr=region.addr,
                rkey=region.rkey, compare=5, swap_or_add=100))
            return wc1.payload, wc2.payload

        old1, old2 = run_gen(sim, proc())
        assert old1 == 5      # swapped
        assert old2 == 9      # compare failed, returns current
        assert region.words[region.addr] == 9

    def test_concurrent_fetch_adds_never_lose_updates(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)

        def proc():
            wcs = []
            for _ in range(10):
                wcs.append(cqp.post_send(WorkRequest(
                    verb=Verb.FETCH_ADD, length=8, remote_addr=region.addr,
                    rkey=region.rkey, swap_or_add=1)))
            for wc_ev in wcs:
                yield wc_ev

        run_gen(sim, proc())
        assert region.words[region.addr] == 10

    def test_atomic_permission_enforced(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(64, remote_atomic=False)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.FETCH_ADD, length=8, remote_addr=region.addr,
                rkey=region.rkey, swap_or_add=1))
            return wc

        assert not run_gen(sim, proc()).ok


class TestSignaling:
    def test_unsignaled_generates_no_cqe(self, rc_pair):
        sim, server, client, fabric, cqp, sqp = rc_pair
        region = server.memory.register(4096)

        def proc():
            yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=8, remote_addr=region.addr,
                rkey=region.rkey, signaled=False))
            yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=8, remote_addr=region.addr,
                rkey=region.rkey, signaled=True))

        run_gen(sim, proc())
        assert len(cqp.send_cq) == 1  # only the signaled one


class TestCompletionQueue:
    def test_poll_reaps_in_order(self, sim):
        cq = CompletionQueue(sim)
        for i in range(3):
            cq.push(Completion(wr_id=i, verb=Verb.SEND))
        wcs = cq.poll()
        assert [wc.wr_id for wc in wcs] == [0, 1, 2]

    def test_poll_respects_max_entries(self, sim):
        cq = CompletionQueue(sim)
        for i in range(5):
            cq.push(Completion(wr_id=i, verb=Verb.SEND))
        assert len(cq.poll(max_entries=2)) == 2
        assert len(cq) == 3

    def test_overflow_counted(self, sim):
        cq = CompletionQueue(sim, capacity=1)
        cq.push(Completion(wr_id=1, verb=Verb.SEND))
        cq.push(Completion(wr_id=2, verb=Verb.SEND))
        assert cq.pushed == 1 and cq.overflowed == 1

    def test_wait_pop(self, sim):
        cq = CompletionQueue(sim)

        def proc():
            wc = yield cq.wait_pop()
            return wc.wr_id

        p = sim.spawn(proc())
        cq.push(Completion(wr_id=9, verb=Verb.RECV))
        sim.run()
        assert p.value == 9

    def test_wr_defaults(self):
        wr = WorkRequest(verb=Verb.SEND, length=10)
        assert wr.signaled
        assert wr.wr_id > 0
        with pytest.raises(ValueError):
            WorkRequest(verb=Verb.SEND, length=-1)
