"""ScaleRPC time-sharing baseline: group gating and its tail cost."""

import pytest

from repro.baselines import ScaleRpcClient, ScaleRpcServer
from repro.config import ClusterConfig
from repro.net import build_cluster
from repro.sim import Simulator, percentile


def make(n_groups=2, slice_ns=20_000.0, n_clients=2):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients))
    server = ScaleRpcServer(sim, servers[0], fabric, n_workers=4,
                            n_groups=n_groups, slice_ns=slice_ns)
    server.register_handler(1, lambda req: (64, None, 50.0))
    return sim, server, clients, fabric


class TestGroups:
    def test_round_robin_group_assignment(self):
        sim, server, clients, fabric = make(n_groups=3)
        client = ScaleRpcClient(sim, clients[0], fabric)
        groups = [client_handle.group for client_handle in
                  (client.connect(server, n_qps=1) for _ in range(6))]
        assert groups == [0, 1, 2, 0, 1, 2]

    def test_rotation_advances(self):
        sim, server, clients, fabric = make(n_groups=4, slice_ns=10_000.0)
        sim.run(until=35_000)
        assert server.current_group == 3
        assert server.rotations == 3

    def test_wait_for_current_group_is_immediate(self):
        sim, server, clients, fabric = make()
        ev = server.wait_for_group(0)
        assert ev.triggered

    def test_wait_for_other_group_blocks_until_slice(self):
        sim, server, clients, fabric = make(n_groups=2, slice_ns=10_000.0)
        ev = server.wait_for_group(1)
        assert not ev.triggered
        sim.run(until=10_001)
        assert ev.processed

    def test_bad_config(self):
        sim, server, clients, fabric = make()
        with pytest.raises(ValueError):
            ScaleRpcServer(sim, clients[0], fabric, n_groups=0)
        with pytest.raises(ValueError):
            ScaleRpcServer(sim, clients[0], fabric, slice_ns=0)


class TestEndToEnd:
    def test_rpcs_complete_across_groups(self):
        sim, server, clients, fabric = make(n_groups=2, slice_ns=15_000.0)
        done = []
        for idx, node in enumerate(clients):
            client = ScaleRpcClient(sim, node, fabric)
            handle = client.connect(server, n_qps=1)

            def worker(client=client, handle=handle, idx=idx):
                for i in range(10):
                    response = yield from client.call(handle, 0, 1, 64,
                                                      (idx, i))
                    done.append(response.payload)

            sim.spawn(worker())
        sim.run(until=5_000_000)
        assert len(done) == 20

    def test_time_sharing_inflates_tail_latency(self):
        """The §10 critique: waiting for your slice costs the tail."""
        def run(n_groups):
            sim, server, clients, fabric = make(n_groups=n_groups,
                                                slice_ns=20_000.0)
            latencies = []
            client = ScaleRpcClient(sim, clients[0], fabric)
            handle = client.connect(server, n_qps=1)

            def worker():
                for _ in range(60):
                    started = sim.now
                    yield from client.call(handle, 0, 1, 64)
                    latencies.append(sim.now - started)

            sim.spawn(worker())
            sim.run(until=30_000_000)
            return percentile(sorted(latencies), 99.0)

        single_group = run(1)   # no gating: pure RC RPC
        four_groups = run(4)    # 3 of 4 slices spent waiting
        assert four_groups > 2 * single_group
