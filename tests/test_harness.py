"""Harness: recorders, result math, tables, and tiny end-to-end runs."""

import pytest

from repro.harness import (
    IndexBenchConfig,
    MicrobenchConfig,
    Recorder,
    RunResult,
    TxnBenchConfig,
    format_table,
    run_erpc,
    run_erpc_index,
    run_fasst_txn,
    run_flock,
    run_flock_index,
    run_flocktx,
    run_raw_reads,
    run_rc,
    run_ud_rpc,
)
from repro.sim import Simulator


class TestRecorder:
    def test_window_filters_completions(self):
        sim = Simulator()
        recorder = Recorder(sim)
        recorder.open_window(100, 200)
        sim.now = 50
        recorder.record(started_ns=0)       # before window
        sim.now = 150
        recorder.record(started_ns=100)     # inside
        sim.now = 250
        recorder.record(started_ns=200)     # after
        assert recorder.ops == 1
        assert recorder.total_ops == 3
        assert recorder.latencies_ns == [50]

    def test_result_units(self):
        sim = Simulator()
        recorder = Recorder(sim)
        recorder.open_window(0, 1_000_000)  # 1 ms
        sim.now = 500_000
        for _ in range(1000):
            recorder.record(started_ns=sim.now - 5_000)
        result = recorder.result()
        assert result.mops == pytest.approx(1.0)  # 1000 ops / 1 ms
        assert result.median_us == pytest.approx(5.0)
        assert result.p99_us == pytest.approx(5.0)

    def test_empty_window_rejected(self):
        recorder = Recorder(Simulator())
        with pytest.raises(ValueError):
            recorder.open_window(10, 10)

    def test_result_without_window_rejected(self):
        recorder = Recorder(Simulator())
        with pytest.raises(RuntimeError):
            recorder.result()

    def test_cdf(self):
        sim = Simulator()
        recorder = Recorder(sim)
        recorder.open_window(0, 1000)
        sim.now = 500
        for lat in (1000.0, 2000.0, 3000.0, 4000.0):
            recorder.record(started_ns=sim.now - lat)
        cdf = recorder.cdf_us(points=5)
        assert cdf[0] == (0.0, 1.0)
        assert cdf[-1] == (100.0, 4.0)
        # Monotone nondecreasing.
        values = [v for _p, v in cdf]
        assert values == sorted(values)

    def test_cdf_empty_and_invalid(self):
        recorder = Recorder(Simulator())
        assert recorder.cdf_us() == []
        with pytest.raises(ValueError):
            recorder.cdf_us(points=1)
        with pytest.raises(ValueError):
            recorder.cdf_us(points=0)

    def test_cdf_single_sample_is_flat(self):
        sim = Simulator()
        recorder = Recorder(sim)
        recorder.open_window(0, 1000)
        sim.now = 500
        recorder.record(started_ns=sim.now - 3000.0)
        cdf = recorder.cdf_us(points=4)
        assert [v for _p, v in cdf] == [3.0, 3.0, 3.0, 3.0]
        assert [p for p, _v in cdf] == pytest.approx(
            [0.0, 100.0 / 3, 200.0 / 3, 100.0])

    def test_cdf_two_points_are_min_and_max(self):
        sim = Simulator()
        recorder = Recorder(sim)
        recorder.open_window(0, 1000)
        sim.now = 500
        for lat in (1000.0, 2000.0, 9000.0):
            recorder.record(started_ns=sim.now - lat)
        assert recorder.cdf_us(points=2) == [(0.0, 1.0), (100.0, 9.0)]

    def test_cdf_uses_module_level_percentile(self):
        # The hot path must not re-import per call (hoisted import).
        import repro.harness.metrics as metrics_mod
        from repro.sim import percentile

        assert metrics_mod.percentile is percentile
        import inspect

        assert "from ..sim import" not in inspect.getsource(
            metrics_mod.Recorder.cdf_us)


class TestRunResult:
    def test_zero_duration(self):
        result = RunResult(ops=0, duration_ns=0, latency={
            "count": 0, "median": 0.0, "p99": 0.0, "mean": 0.0,
            "min": 0.0, "max": 0.0})
        assert result.mops == 0.0

    def test_row(self):
        result = RunResult(ops=100, duration_ns=1e6, latency={
            "count": 100, "median": 2000.0, "p99": 9000.0, "mean": 2500.0,
            "min": 1000.0, "max": 9500.0})
        row = result.row()
        assert row["mops"] == pytest.approx(0.1)
        assert row["median_us"] == 2.0
        assert row["p99_us"] == 9.0
        assert row["p999_us"] == 0.0  # legacy latency dict without p999

    def test_row_carries_p999(self):
        result = RunResult(ops=100, duration_ns=1e6, latency={
            "count": 100, "median": 2000.0, "p99": 9000.0,
            "p999": 9400.0, "mean": 2500.0, "min": 1000.0, "max": 9500.0})
        assert result.p999_us == pytest.approx(9.4)
        assert result.row()["p999_us"] == pytest.approx(9.4)


class TestTables:
    def test_format_table(self):
        text = format_table("Fig X", ["a", "bb"], [[1, 2.345], [10, 3.0]])
        assert "Fig X" in text
        assert "2.35" in text  # float formatting
        lines = text.splitlines()
        assert len(lines) == 7  # title, rule, header, rule, 2 rows, rule


SMALL = MicrobenchConfig(n_clients=3, threads_per_client=4, outstanding=1,
                         warmup_ns=150_000, measure_ns=150_000)


class TestMicrobenchIntegration:
    def test_flock_runs_and_measures(self):
        result = run_flock(SMALL)
        assert result.ops > 0
        assert result.mops > 0
        assert result.median_us > 0
        assert result.extras["system"] == "flock"

    def test_flock_ablations_run(self):
        base = run_flock(SMALL)
        no_coalesce = run_flock(SMALL, coalescing=False)
        assert no_coalesce.extras["mean_coalescing_degree"] == pytest.approx(1.0)
        assert base.ops > 0 and no_coalesce.ops > 0

    def test_erpc_runs(self):
        result = run_erpc(SMALL)
        assert result.ops > 0
        assert result.extras["system"] == "erpc"

    def test_rc_sharing_variants_run(self):
        dedicated = run_rc(SMALL, threads_per_qp=1)
        shared = run_rc(SMALL, threads_per_qp=4)
        assert dedicated.ops > 0 and shared.ops > 0

    def test_raw_reads_runs(self):
        result = run_raw_reads(24, n_clients=3)
        assert result.mops > 0
        assert result.extras["total_qps"] == 24

    def test_ud_rpc_runs(self):
        result = run_ud_rpc(12, n_clients=3)
        assert result.mops > 0

    def test_deterministic_given_seed(self):
        a = run_flock(SMALL)
        b = run_flock(SMALL)
        assert a.ops == b.ops
        assert a.latency == b.latency


class TestTxnBenchIntegration:
    CFG = TxnBenchConfig(n_clients=2, threads_per_client=2,
                         coroutines_per_thread=3,
                         subscribers_per_server=600,
                         accounts_per_thread=300,
                         warmup_ns=200_000, measure_ns=200_000)

    def test_flocktx_tatp(self):
        result = run_flocktx(self.CFG)
        assert result.extras["committed"] > 0
        assert result.extras["system"] == "flocktx"

    def test_fasst_tatp(self):
        result = run_fasst_txn(self.CFG)
        assert result.extras["committed"] > 0

    def test_smallbank_both(self):
        from dataclasses import replace
        cfg = replace(self.CFG, workload="smallbank")
        flock_result = run_flocktx(cfg)
        fasst_result = run_fasst_txn(cfg)
        assert flock_result.extras["committed"] > 0
        assert fasst_result.extras["committed"] > 0

    def test_unknown_workload_rejected(self):
        from dataclasses import replace
        cfg = replace(self.CFG, workload="nope")
        with pytest.raises(ValueError):
            cfg.make_workload(None)


class TestIndexBenchIntegration:
    CFG = IndexBenchConfig(n_clients=2, threads_per_client=3,
                           n_keys=20_000, warmup_ns=200_000,
                           measure_ns=200_000)

    def test_flock_index(self):
        results = run_flock_index(self.CFG)
        assert results["get"].ops > 0
        assert results["scan"].ops > 0
        assert results["total_mops"] > 0

    def test_erpc_index(self):
        results = run_erpc_index(self.CFG)
        assert results["get"].ops > 0

    def test_mix_is_90_10(self):
        results = run_flock_index(self.CFG)
        gets, scans = results["get"].ops, results["scan"].ops
        assert gets / (gets + scans) == pytest.approx(0.9, abs=0.05)
