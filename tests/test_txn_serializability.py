"""Concurrency-correctness checks for FLockTX.

Many coordinators race over a tiny, hot key space; afterwards we audit
the ground truth the OCC + 2PC + replication protocol must preserve:

* **version accounting** — each key's version is exactly 1 (load) plus
  the number of commits that wrote it;
* **atomicity** — a committed multi-key transaction installed *all* its
  writes, an aborted one installed none;
* **replication** — after the cluster drains, every backup holds the
  primary's exact (value, version) for every key;
* **no stuck locks** — all locks are released when the dust settles.
"""

import pytest

from repro.apps.kvstore import partition_of, replicas_of
from repro.apps.txn import (
    Coordinator,
    FlockTxTransport,
    Transaction,
    TxnOutcome,
)
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.harness.txnbench import TxnBenchConfig, build_txn_servers
from repro.net import build_cluster
from repro.sim import Simulator, Streams


def build(seed, n_clients=3):
    sim = Simulator()
    cluster = ClusterConfig(n_clients=n_clients, n_servers=3, seed=seed)
    server_hw, client_hw, fabric = build_cluster(sim, cluster)
    cfg = TxnBenchConfig(n_servers=3, subscribers_per_server=40)
    txn_servers = build_txn_servers(cfg, server_hw)
    fcfg = FlockConfig(qps_per_handle=2)
    flock_servers = []
    rkeys = {}
    for s in range(3):
        fnode = FlockNode(sim, server_hw[s], fabric, fcfg)
        txn_servers[s].bind(fnode.fl_reg_handler)
        flock_servers.append(fnode)
        rkeys[s] = txn_servers[s].primary.region.rkey
    coordinators = []
    for c_idx in range(n_clients):
        client = FlockNode(sim, client_hw[c_idx], fabric, fcfg, seed=c_idx)
        handles = {s: client.fl_connect(flock_servers[s], n_qps=2)
                   for s in range(3)}
        transport = FlockTxTransport(client, handles, rkeys, thread_id=0)
        coordinators.append(Coordinator(transport, 3,
                                        coordinator_id=c_idx + 1))
    return sim, txn_servers, coordinators, cfg.n_keys()


@pytest.mark.parametrize("seed", [1, 7, 23])
def test_concurrent_storm_preserves_invariants(seed):
    sim, servers, coordinators, n_keys = build(seed)
    streams = Streams(seed)
    committed_writes = []  # (txn_tag, [keys])

    def storm(coordinator, rng, tag):
        for i in range(40):
            a = rng.randrange(n_keys)
            b = rng.randrange(n_keys)
            if a == b:
                continue
            txn_tag = (tag, i)
            txn = Transaction(reads=[a],
                              writes=[(b, txn_tag)]) if rng.random() < 0.5 \
                else Transaction(writes=[(a, txn_tag), (b, txn_tag)])
            outcome = yield from coordinator.run(txn)
            if outcome == TxnOutcome.COMMITTED:
                committed_writes.append((txn_tag, txn.write_keys))

    procs = []
    for c_idx, coordinator in enumerate(coordinators):
        for k in range(4):  # 4 concurrent coroutines per coordinator
            rng = streams.stream("storm-%d-%d" % (c_idx, k))
            procs.append(sim.spawn(storm(coordinator, rng, tag=(c_idx, k))))
    # Run until every coroutine finishes (the scheduler's periodic
    # processes never terminate, so a full drain would spin forever).
    sim.run_until_event(sim.all_of(procs))
    sim.run(until=sim.now + 1_000_000)  # let in-flight control traffic land

    total = sum(c.committed + c.aborted + c.lost for c in coordinators)
    committed = sum(c.committed for c in coordinators)
    assert committed > 0
    assert sum(c.lost for c in coordinators) == 0

    # Version accounting: commits per key == version - 1.
    commits_per_key = {}
    for _tag, keys in committed_writes:
        for key in keys:
            commits_per_key[key] = commits_per_key.get(key, 0) + 1
    for key in range(n_keys):
        primary = servers[partition_of(key, 3)].primary
        entry = primary.get(key)
        expected = 1 + commits_per_key.get(key, 0)
        assert entry.version == expected, key

    # Atomicity/integrity: every key's final value is the tag of some
    # *committed* transaction that actually wrote that key — a value from
    # an aborted transaction can never be visible.
    wrote_key = {}
    for tag, keys in committed_writes:
        for key in keys:
            wrote_key.setdefault(key, set()).add(tag)
    for key in range(n_keys):
        primary = servers[partition_of(key, 3)].primary
        value = primary.get(key).value
        if value != 0:  # 0 = initial load
            assert value in wrote_key.get(key, set()), (key, value)

    # No stuck locks anywhere.
    for server in servers:
        for key, entry in server.primary.entries.items():
            assert not entry.locked, key

    # Replication: every backup equals its primary.
    for p in range(3):
        primary = servers[p].primary
        for replica_id in replicas_of(p, 3)[1:]:
            backup = servers[replica_id].replicas[p]
            for key, entry in primary.entries.items():
                copy = backup.get(key)
                assert copy is not None, key
                assert copy.version == entry.version, key
                assert copy.value == entry.value, key


def test_aborted_transactions_leave_no_trace():
    sim, servers, coordinators, n_keys = build(seed=5, n_clients=1)
    coordinator = coordinators[0]
    key = next(k for k in range(n_keys) if partition_of(k, 3) == 0)
    # Pre-lock so the transaction must abort.
    servers[0].primary.try_lock(key, owner=424242)
    outcome_box = []

    def run():
        outcome = yield from coordinator.run(
            Transaction(writes=[(key, "doomed")]))
        outcome_box.append(outcome)

    proc = sim.spawn(run())
    sim.run_until_event(proc)
    assert outcome_box == [TxnOutcome.ABORTED]
    entry = servers[0].primary.get(key)
    assert entry.value == 0 and entry.version == 1
    # Replicas untouched as well.
    for replica_id in replicas_of(0, 3)[1:]:
        assert servers[replica_id].replicas[0].get(key).value == 0
