"""Shared test helpers."""

from __future__ import annotations

import pytest

from repro.config import ClusterConfig
from repro.net import build_cluster
from repro.sim import Simulator


def run_gen(sim: Simulator, gen, until=None):
    """Spawn a generator process, run the sim, return its value."""
    proc = sim.spawn(gen)
    if until is None:
        sim.run()
    else:
        sim.run(until=until)
    if not proc.processed:
        raise AssertionError("process did not finish by t=%r" % sim.now)
    return proc.value


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def small_cluster(sim):
    """(sim, server node, client nodes, fabric) with 2 clients."""
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=2))
    return sim, servers[0], clients, fabric
