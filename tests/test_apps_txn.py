"""FLockTX: OCC + 2PC + replication over both transports."""

import pytest

from repro.apps.kvstore import partition_of, replicas_of
from repro.apps.txn import Coordinator, Transaction, TxnOutcome
from repro.harness.txnbench import TxnBenchConfig, build_txn_servers
from repro.baselines import FasstEndpoint, FasstServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.apps.txn import FasstTxTransport, FlockTxTransport
from repro.net import build_cluster
from repro.sim import Simulator


def flock_cluster(n_keys=300):
    """3 servers, 1 client, FLockTX wiring; returns everything needed."""
    sim = Simulator()
    cluster = ClusterConfig(n_clients=1, n_servers=3)
    server_hw, client_hw, fabric = build_cluster(sim, cluster)
    cfg = TxnBenchConfig(n_servers=3, subscribers_per_server=n_keys // 3 + 1)
    txn_servers = build_txn_servers(cfg, server_hw)
    fcfg = FlockConfig(qps_per_handle=2)
    flock_servers = []
    version_rkeys = {}
    for s in range(3):
        fnode = FlockNode(sim, server_hw[s], fabric, fcfg)
        txn_servers[s].bind(fnode.fl_reg_handler)
        flock_servers.append(fnode)
        version_rkeys[s] = txn_servers[s].primary.region.rkey
    client = FlockNode(sim, client_hw[0], fabric, fcfg, seed=5)
    handles = {s: client.fl_connect(flock_servers[s], n_qps=2)
               for s in range(3)}
    transport = FlockTxTransport(client, handles, version_rkeys, thread_id=0)
    coordinator = Coordinator(transport, 3, coordinator_id=1)
    return (sim, txn_servers, coordinator, client, handles, version_rkeys,
            flock_servers)


def run_txn(sim, coordinator, txn, until=20_000_000):
    out = []

    def proc():
        outcome = yield from coordinator.run(txn)
        out.append(outcome)

    sim.spawn(proc())
    sim.run(until=until)
    assert out, "transaction did not finish"
    return out[0]


def key_on(txn_servers, server_id, n=3):
    """A key whose primary partition is server_id."""
    for key in range(100000):
        if partition_of(key, n) == server_id:
            return key
    raise AssertionError


class TestCommitPath:
    def test_read_only_single_key(self):
        sim, servers, coord, *_rest = flock_cluster()
        outcome = run_txn(sim, coord, Transaction(reads=[5]))
        assert outcome == TxnOutcome.COMMITTED
        assert coord.committed == 1

    def test_write_commits_at_primary_and_replicas(self):
        sim, servers, coord, *_rest = flock_cluster()
        key = key_on(servers, 0)
        outcome = run_txn(sim, coord, Transaction(writes=[(key, "val-9")]))
        assert outcome == TxnOutcome.COMMITTED
        # Primary applied it.
        assert servers[0].primary.get(key).value == "val-9"
        assert servers[0].primary.get(key).version == 2
        assert not servers[0].primary.get(key).locked
        # Both backups applied it during logging.
        for replica_id in replicas_of(0, 3)[1:]:
            copy = servers[replica_id].replicas[0]
            assert copy.get(key).value == "val-9"
            assert copy.get(key).version == 2

    def test_multi_partition_transaction(self):
        sim, servers, coord, *_rest = flock_cluster()
        k0 = key_on(servers, 0)
        k1 = key_on(servers, 1)
        outcome = run_txn(sim, coord, Transaction(
            reads=[k0], writes=[(k1, "w")]))
        assert outcome == TxnOutcome.COMMITTED
        assert servers[1].primary.get(k1).value == "w"

    def test_read_write_txn_validates_reads(self):
        sim, servers, coord, *_rest = flock_cluster()
        k_read = key_on(servers, 0)
        k_write = key_on(servers, 1)
        outcome = run_txn(sim, coord, Transaction(
            reads=[k_read], writes=[(k_write, 1)]))
        assert outcome == TxnOutcome.COMMITTED


class TestAbortPath:
    def test_lock_conflict_aborts(self):
        sim, servers, coord, *_rest = flock_cluster()
        key = key_on(servers, 0)
        # Another transaction holds the lock.
        assert servers[0].primary.try_lock(key, owner=999)
        outcome = run_txn(sim, coord, Transaction(writes=[(key, "x")]))
        assert outcome == TxnOutcome.ABORTED
        assert coord.aborted == 1
        # The foreign lock is untouched.
        assert servers[0].primary.get(key).lock_owner == 999

    def test_abort_releases_own_locks_on_other_partitions(self):
        sim, servers, coord, *_rest = flock_cluster()
        k0 = key_on(servers, 0)
        k1 = key_on(servers, 1)
        servers[1].primary.try_lock(k1, owner=999)  # forces abort on s1
        outcome = run_txn(sim, coord, Transaction(
            writes=[(k0, "a"), (k1, "b")]))
        assert outcome == TxnOutcome.ABORTED
        # The lock taken on server 0 during execution was released.
        assert not servers[0].primary.get(k0).locked
        assert servers[0].primary.get(k0).value == 0  # unchanged

    def test_validation_failure_aborts(self):
        (sim, servers, coord, _client, _handles, _rkeys,
         flock_servers) = flock_cluster()
        k_read = key_on(servers, 0)
        k_write = key_on(servers, 1)
        # Sabotage validation: a "concurrent writer" bumps the read key's
        # version right after the execution phase reads it.
        from repro.apps.txn import RPC_EXEC
        original = servers[0].handle_exec

        def tampering_exec(request):
            result = original(request)
            entry = servers[0].primary.entries[k_read]
            entry.version += 1
            servers[0].primary._publish(k_read, entry)
            return result

        flock_servers[0].server.handlers[RPC_EXEC] = tampering_exec
        outcome = run_txn(sim, coord, Transaction(
            reads=[k_read], writes=[(k_write, "w")]))
        assert outcome == TxnOutcome.ABORTED
        # The write lock taken on server 1 was released by the abort.
        assert not servers[1].primary.get(k_write).locked


class TestConcurrency:
    def test_concurrent_writers_serialize(self):
        """Two coordinators hammering one key: all commits are serial —
        the final version equals 1 + committed count."""
        sim, servers, coord, client, handles, rkeys, _fs = flock_cluster()
        coord2 = Coordinator(
            FlockTxTransport(client, handles, rkeys, thread_id=1), 3,
            coordinator_id=2)
        key = key_on(servers, 0)
        outcomes = []

        def proc(c, n):
            for i in range(n):
                outcome = yield from c.run(Transaction(writes=[(key, i)]))
                outcomes.append(outcome)

        sim.spawn(proc(coord, 10))
        sim.spawn(proc(coord2, 10))
        sim.run(until=50_000_000)
        committed = outcomes.count(TxnOutcome.COMMITTED)
        assert len(outcomes) == 20
        assert servers[0].primary.get(key).version == 1 + committed
        assert not servers[0].primary.get(key).locked


class TestFasstTransport:
    def make(self):
        sim = Simulator()
        cluster = ClusterConfig(n_clients=1, n_servers=3)
        server_hw, client_hw, fabric = build_cluster(sim, cluster)
        cfg = TxnBenchConfig(n_servers=3, subscribers_per_server=100)
        txn_servers = build_txn_servers(cfg, server_hw)
        fasst_servers = []
        for s in range(3):
            fsrv = FasstServer(sim, server_hw[s], fabric, n_workers=2)
            txn_servers[s].bind(fsrv.register_handler)
            fsrv.start()
            fasst_servers.append(fsrv)
        endpoint = FasstEndpoint(sim, client_hw[0], fabric)
        transport = FasstTxTransport(
            endpoint, {s: (fasst_servers[s], fasst_servers[s].qps[0])
                       for s in range(3)})
        return sim, txn_servers, Coordinator(transport, 3, coordinator_id=3)

    def test_commit_over_fasst(self):
        sim, servers, coord = self.make()
        key = key_on(servers, 0)
        outcome = run_txn(sim, coord, Transaction(writes=[(key, "f")]))
        assert outcome == TxnOutcome.COMMITTED
        assert servers[0].primary.get(key).value == "f"

    def test_validation_uses_rpc_not_one_sided(self):
        sim, servers, coord = self.make()
        k_read = key_on(servers, 0)
        k_write = key_on(servers, 1)
        outcome = run_txn(sim, coord, Transaction(
            reads=[k_read], writes=[(k_write, 1)]))
        assert outcome == TxnOutcome.COMMITTED
        assert not coord.transport.supports_one_sided
