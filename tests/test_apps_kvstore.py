"""KV store substrate: OCC entries, version words, partitioning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.kvstore import (
    KvEntry,
    KvPartition,
    partition_of,
    replicas_of,
)
from repro.hw import HostMemory


def make_partition():
    mem = HostMemory()
    region = mem.register(1 << 16)
    return KvPartition(0, region=region), region


class TestKvEntry:
    def test_version_word_packing(self):
        entry = KvEntry(value="v", version=5)
        assert entry.version_word == 10  # 5 << 1, unlocked
        entry.lock_owner = 7
        assert entry.version_word == 11  # lock bit set
        assert entry.locked

    @given(st.integers(min_value=0, max_value=2 ** 40),
           st.booleans())
    @settings(max_examples=50, deadline=None)
    def test_word_roundtrips(self, version, locked):
        entry = KvEntry(version=version,
                        lock_owner=1 if locked else None)
        word = entry.version_word
        assert word >> 1 == version
        assert bool(word & 1) == locked


class TestPartition:
    def test_load_and_get(self):
        part, region = make_partition()
        part.load([(1, "a"), (2, "b")])
        assert part.get(1).value == "a"
        assert part.get(1).version == 1
        assert part.get(99) is None

    def test_lock_conflict(self):
        part, _region = make_partition()
        part.load([(1, "a")])
        assert part.try_lock(1, owner=100)
        assert not part.try_lock(1, owner=200)
        assert part.try_lock(1, owner=100)  # re-entrant for same owner
        assert part.lock_failures == 1

    def test_unlock_requires_owner(self):
        part, _region = make_partition()
        part.load([(1, "a")])
        part.try_lock(1, owner=100)
        assert not part.unlock(1, owner=200)
        assert part.unlock(1, owner=100)
        assert not part.get(1).locked

    def test_commit_bumps_version_and_unlocks(self):
        part, region = make_partition()
        part.load([(1, "a")])
        part.try_lock(1, owner=5)
        version = part.commit_update(1, "b", owner=5)
        assert version == 2
        entry = part.get(1)
        assert entry.value == "b" and not entry.locked

    def test_commit_without_lock_rejected(self):
        part, _region = make_partition()
        part.load([(1, "a")])
        with pytest.raises(RuntimeError):
            part.commit_update(1, "b", owner=5)

    def test_published_word_tracks_state(self):
        part, region = make_partition()
        part.load([(1, "a")])
        addr = part.addr_of(1)
        assert region.words[addr] == (1 << 1)
        part.try_lock(1, owner=9)
        assert region.words[addr] == (1 << 1) | 1
        part.commit_update(1, "b", owner=9)
        assert region.words[addr] == (2 << 1)

    def test_addresses_stable_and_distinct(self):
        part, _region = make_partition()
        part.load([(1, "a"), (2, "b")])
        assert part.addr_of(1) == part.addr_of(1)
        assert part.addr_of(1) != part.addr_of(2)

    def test_replica_update_monotone(self):
        part, _region = make_partition()
        part.apply_replica_update(1, "v3", 3)
        part.apply_replica_update(1, "v2", 2)  # stale, ignored
        entry = part.get(1)
        assert entry.value == "v3" and entry.version == 3

    def test_lock_creates_missing_entry(self):
        part, _region = make_partition()
        assert part.try_lock(42, owner=1)
        assert part.get(42).locked

    def test_version_of_missing_key(self):
        part, _region = make_partition()
        assert part.version_of(123) == 0

    def test_no_region_rejects_addr(self):
        part = KvPartition(0)
        with pytest.raises(RuntimeError):
            part.addr_of(1)


class TestPlacement:
    def test_partition_of_stable(self):
        assert partition_of(12345, 3) == partition_of(12345, 3)

    def test_partition_of_in_range(self):
        for key in range(1000):
            assert 0 <= partition_of(key, 3) < 3

    def test_partition_spread_roughly_even(self):
        from collections import Counter
        counts = Counter(partition_of(k, 3) for k in range(30000))
        for p in range(3):
            assert 8000 < counts[p] < 12000

    def test_replicas_of_chain(self):
        assert replicas_of(0, 3) == [0, 1, 2]
        assert replicas_of(2, 3) == [2, 0, 1]

    def test_replicas_capped_by_cluster(self):
        assert replicas_of(0, 2) == [0, 1]
        assert replicas_of(0, 1) == [0]

    @given(st.integers(min_value=0, max_value=10 ** 9),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_partition_always_valid(self, key, n):
        assert 0 <= partition_of(key, n) < n
