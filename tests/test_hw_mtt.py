"""Memory-translation cache (MTT/MPT) behaviour and fabric helpers."""

import pytest

from repro.config import ClusterConfig, NicConfig
from repro.net import build_cluster
from repro.sim import Simulator
from repro.verbs import QueuePair, Transport, Verb, WorkRequest

from conftest import run_gen


class TestMttCache:
    def test_many_regions_thrash_translation_cache(self):
        """One-sided ops carry rkeys; touching more regions than the MTT
        holds forces PCIe fetches (LITE's motivation, paper §10)."""
        sim = Simulator()
        cfg = ClusterConfig(n_clients=1)
        cfg.nic = NicConfig(mtt_cache_entries=8)
        servers, clients, fabric = build_cluster(sim, cfg)
        server, client = servers[0], clients[0]
        sqp = QueuePair(sim, server, fabric, Transport.RC)
        cqp = QueuePair(sim, client, fabric, Transport.RC)
        cqp.connect(sqp)
        regions = [server.memory.register(4096) for _ in range(32)]

        def proc():
            for _round in range(3):
                for region in regions:
                    yield cqp.post_send(WorkRequest(
                        verb=Verb.WRITE, length=8, remote_addr=region.addr,
                        rkey=region.rkey, signaled=False))

        run_gen(sim, proc())
        assert server.rnic.mtt_cache.stats.miss_ratio > 0.5

    def test_single_region_stays_hot(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=1))
        server, client = servers[0], clients[0]
        sqp = QueuePair(sim, server, fabric, Transport.RC)
        cqp = QueuePair(sim, client, fabric, Transport.RC)
        cqp.connect(sqp)
        region = server.memory.register(4096)

        def proc():
            for _ in range(20):
                yield cqp.post_send(WorkRequest(
                    verb=Verb.WRITE, length=8, remote_addr=region.addr,
                    rkey=region.rkey, signaled=False))

        run_gen(sim, proc())
        assert server.rnic.mtt_cache.stats.misses == 1  # cold miss only


class TestFabricHelpers:
    def test_transfer_async_returns_process(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        proc = fabric.transfer_async(clients[0], server, 64, 1, 2)
        sim.run()
        assert proc.processed and proc.value is True
        assert fabric.messages_delivered == 1

    def test_qpn_allocation_monotonic(self, small_cluster):
        _sim, server, _clients, _fabric = small_cluster
        qpns = [server.alloc_qpn() for _ in range(10)]
        assert qpns == sorted(qpns)
        assert len(set(qpns)) == 10

    def test_cqe_dma_advances_time_and_counts(self, small_cluster):
        sim, server, _clients, _fabric = small_cluster

        def proc():
            yield from server.rnic.cqe_dma()
            return sim.now

        elapsed = run_gen(sim, proc())
        assert elapsed == server.rnic.cfg.cqe_dma_ns
        assert server.rnic.cqes_generated == 1
