"""The shipped examples: importable, documented, and the fast one runs."""

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamplesShape:
    def test_at_least_three_examples(self):
        assert len(EXAMPLES) >= 3

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_importable_with_main(self, path):
        module = load(path)
        assert hasattr(module, "main") and callable(module.main)

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_module_docstring(self, path):
        module = load(path)
        assert module.__doc__ and len(module.__doc__) > 50


class TestQuickstartRuns:
    def test_quickstart_end_to_end(self, capsys):
        module = load(EXAMPLES_DIR / "quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "completed 200 RPCs" in out
        assert "coalescing degree" in out


class TestSchedulingDemoRuns:
    def test_scheduling_demo_end_to_end(self, capsys):
        module = load(EXAMPLES_DIR / "scheduling_demo.py")
        module.main()
        out = capsys.readouterr().out
        assert "redistributions" in out
        assert "Algorithm 1" in out
