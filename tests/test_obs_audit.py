"""Invariant auditors: framework units plus clean-run end-to-end passes."""

import pytest

from repro.harness import (
    IndexBenchConfig,
    MicrobenchConfig,
    TxnBenchConfig,
    run_erpc,
    run_flock,
    run_flock_index,
    run_flocktx,
    run_raw_reads,
)
from repro.obs import (
    AuditContext,
    AuditError,
    AuditReport,
    Registry,
    Violation,
    run_audit,
)
from repro.obs.audit import AUDIT_ENV, audit_enabled
from repro.sim import Simulator

SMALL = MicrobenchConfig(n_clients=3, threads_per_client=4, outstanding=4,
                         warmup_ns=150_000, measure_ns=150_000)


class TestFramework:
    def test_violation_str_names_auditor_and_invariant(self):
        v = Violation(auditor="credits", invariant="flock.credits",
                      detail="bad", observed=1, expected=2)
        text = str(v)
        assert "credits" in text and "flock.credits" in text
        assert "observed=1" in text and "expected=2" in text

    def test_report_ok_and_format(self):
        report = AuditReport(checks=3)
        assert report.ok
        report.violations.append(Violation("a", "i", "d"))
        assert not report.ok
        assert "1 violations" in report.format()
        assert "FAIL" in report.format()

    def test_report_format_truncates(self):
        report = AuditReport()
        for i in range(30):
            report.violations.append(Violation("a", "i%d" % i, "d"))
        text = report.format(max_violations=5)
        assert "... 25 more violations" in text

    def test_report_to_dict(self):
        report = AuditReport(checks=2)
        report.skipped.append("x: no registry")
        d = report.to_dict()
        assert d["checks"] == 2 and d["ok"] and d["skipped"] == ["x: no registry"]

    def test_audit_error_carries_report(self):
        report = AuditReport()
        report.violations.append(Violation("a", "i", "d"))
        err = AuditError(report)
        assert err.report is report
        assert isinstance(err, AssertionError)

    def test_check_eq_exact_and_float(self):
        ctx = AuditContext(Simulator())
        assert ctx.check_eq("x", 5, 5)
        assert not ctx.check_eq("x", 5, 6)
        # Float mode pads with rtol/atol slack.
        assert ctx.check_eq("y", 1.0 + 1e-12, 1.0, exact=False)
        assert not ctx.check_eq("y", 1.1, 1.0, exact=False)
        assert ctx.report.checks == 4
        assert len(ctx.report.violations) == 2

    def test_context_drops_disabled_registry(self):
        reg = Registry()
        reg.enabled = False
        ctx = AuditContext(Simulator(), reg)
        assert ctx.registry is None

    def test_audit_enabled_env_parsing(self, monkeypatch):
        for off in ("", "0", "false", "NO", "off"):
            monkeypatch.setenv(AUDIT_ENV, off)
            assert not audit_enabled()
        for on in ("1", "true", "yes"):
            monkeypatch.setenv(AUDIT_ENV, on)
            assert audit_enabled()
        monkeypatch.delenv(AUDIT_ENV)
        assert not audit_enabled()

    def test_empty_sim_audit_is_clean(self):
        report = run_audit(Simulator())
        assert report.ok
        assert report.checks >= 2  # monotone-time always runs
        assert report.skipped  # no components -> recorded skips

    def test_auditor_crash_becomes_violation(self):
        def broken(ctx):
            raise RuntimeError("boom")

        report = run_audit(Simulator(), auditors=[("broken", broken)])
        assert not report.ok
        assert report.violations[0].invariant == "auditor.crashed"
        assert "boom" in report.violations[0].detail

    def test_raise_on_violation(self):
        def broken(ctx):
            ctx.check("x", False, "always fails")

        with pytest.raises(AuditError) as excinfo:
            run_audit(Simulator(), auditors=[("broken", broken)],
                      raise_on_violation=True)
        assert not excinfo.value.report.ok


class TestCleanRuns:
    """Every runner passes its own audit on an unmutated model."""

    def _assert_clean(self, result):
        report = result.audit_report
        assert report is not None
        assert report.ok, report.format()
        assert report.checks > 10

    def test_flock_audits_clean(self):
        self._assert_clean(run_flock(SMALL, audit=True))

    def test_erpc_audits_clean(self):
        self._assert_clean(run_erpc(SMALL, audit=True))

    def test_raw_reads_audit_clean(self):
        self._assert_clean(run_raw_reads(24, n_clients=3, audit=True))

    def test_flocktx_audits_clean(self):
        cfg = TxnBenchConfig(n_clients=2, threads_per_client=2,
                             coroutines_per_thread=3,
                             subscribers_per_server=600,
                             warmup_ns=200_000, measure_ns=200_000)
        self._assert_clean(run_flocktx(cfg, audit=True))

    def test_index_audits_clean(self):
        cfg = IndexBenchConfig(n_clients=2, threads_per_client=3,
                               n_keys=20_000, warmup_ns=200_000,
                               measure_ns=200_000)
        self._assert_clean(run_flock_index(cfg, audit=True)["get"])

    def test_flock_audit_reports_littles_law_info(self):
        result = run_flock(SMALL, audit=True)
        laws = {k: v for k, v in result.audit_report.info.items()
                if k.startswith("queues.littles_law")}
        assert laws
        for fig in laws.values():
            assert fig["L"] >= 0 and fig["W_ns"] > 0

    def test_audit_env_opts_runs_in(self, monkeypatch):
        monkeypatch.setenv(AUDIT_ENV, "1")
        result = run_flock(SMALL)
        assert result.audit_report is not None and result.audit_report.ok

    def test_audit_off_by_default(self, monkeypatch):
        monkeypatch.delenv(AUDIT_ENV, raising=False)
        result = run_flock(SMALL)
        assert result.audit_report is None

    def test_audit_with_shared_telemetry_skips_counter_checks(self):
        from repro.obs import Telemetry

        tel = Telemetry()
        run_flock(SMALL, telemetry=tel)  # first run dirties the registry
        result = run_flock(SMALL, telemetry=tel, audit=True)
        report = result.audit_report
        assert report.ok, report.format()
        # Counter cross-checks must be recorded skips, not bogus passes.
        assert any("counters" in s for s in report.skipped)
