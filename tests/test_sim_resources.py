"""Resources, stores, spinlocks, token buckets."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import Resource, SimulationError, Simulator, SpinLock, Store, TokenBucket

from conftest import run_gen


class TestResource:
    def test_immediate_acquire_under_capacity(self, sim):
        res = Resource(sim, capacity=2)
        assert res.acquire().triggered
        assert res.acquire().triggered
        assert res.in_use == 2

    def test_waiters_fifo(self, sim):
        res = Resource(sim, capacity=1)
        order = []

        def proc(tag, hold):
            yield res.acquire()
            order.append(tag)
            yield sim.timeout(hold)
            res.release()

        sim.spawn(proc("a", 10))
        sim.spawn(proc("b", 10))
        sim.spawn(proc("c", 10))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_release_idle_rejected(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            res.release()

    def test_try_acquire(self, sim):
        res = Resource(sim, capacity=1)
        assert res.try_acquire()
        assert not res.try_acquire()
        res.release()
        assert res.try_acquire()

    def test_bad_capacity(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    @given(st.integers(min_value=1, max_value=5),
           st.lists(st.integers(min_value=1, max_value=20),
                    min_size=1, max_size=25))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_capacity(self, capacity, hold_times):
        sim = Simulator()
        res = Resource(sim, capacity=capacity)
        max_seen = [0]

        def proc(hold):
            yield res.acquire()
            max_seen[0] = max(max_seen[0], res.in_use)
            yield sim.timeout(hold)
            res.release()

        for hold in hold_times:
            sim.spawn(proc(hold))
        sim.run()
        assert max_seen[0] <= capacity
        assert res.in_use == 0


class TestSpinLock:
    def test_counts_contended_acquires(self, sim):
        lock = SpinLock(sim)

        def proc():
            yield lock.acquire()
            yield sim.timeout(10)
            lock.release()

        for _ in range(4):
            sim.spawn(proc())
        sim.run()
        assert lock.total_acquires == 4
        assert lock.contended_acquires == 3


class TestStore:
    def test_put_get_fifo(self, sim):
        store = Store(sim)

        def producer():
            for i in range(5):
                yield store.put(i)

        def consumer():
            out = []
            for _ in range(5):
                item = yield store.get()
                out.append(item)
            return out

        sim.spawn(producer())
        assert run_gen(sim, consumer()) == [0, 1, 2, 3, 4]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return (item, sim.now)

        def producer():
            yield sim.timeout(42)
            store.try_put("late")

        sim.spawn(producer())
        assert run_gen(sim, consumer()) == ("late", 42)

    def test_capacity_blocks_putter(self, sim):
        store = Store(sim, capacity=1)
        times = []

        def producer():
            yield store.put("a")
            times.append(sim.now)
            yield store.put("b")
            times.append(sim.now)

        def consumer():
            yield sim.timeout(30)
            ok, item = store.try_get()
            assert ok and item == "a"

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert times[0] == 0
        assert times[1] == 30  # blocked until the consumer drained

    def test_try_put_respects_capacity(self, sim):
        store = Store(sim, capacity=2)
        assert store.try_put(1)
        assert store.try_put(2)
        assert not store.try_put(3)

    def test_try_get_empty(self, sim):
        store = Store(sim)
        ok, item = store.try_get()
        assert not ok and item is None

    def test_direct_handoff_to_waiter(self, sim):
        store = Store(sim)

        def consumer():
            item = yield store.get()
            return item

        p = sim.spawn(consumer())
        sim.run()  # consumer parks
        store.try_put("direct")
        sim.run()
        assert p.value == "direct"

    @given(st.lists(st.integers(), min_size=1, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_fifo_property(self, items):
        sim = Simulator()
        store = Store(sim)
        for item in items:
            store.try_put(item)
        out = []

        def consumer():
            for _ in items:
                got = yield store.get()
                out.append(got)

        sim.spawn(consumer())
        sim.run()
        assert out == items


class TestTokenBucket:
    def test_burst_then_rate_limited(self, sim):
        bucket = TokenBucket(sim, rate_per_ns=0.001, burst=2)  # 1 per µs
        assert bucket.delay_for() == 0
        assert bucket.delay_for() == 0
        delay = bucket.delay_for()
        assert delay == pytest.approx(1000.0)

    def test_refills_over_time(self, sim):
        bucket = TokenBucket(sim, rate_per_ns=0.01, burst=1)
        assert bucket.delay_for() == 0

        def proc():
            yield sim.timeout(100)  # exactly one token refilled
            return bucket.delay_for()

        assert run_gen(sim, proc()) == pytest.approx(0.0)

    def test_sustained_rate(self, sim):
        rate = 0.005  # 5 ops/µs
        bucket = TokenBucket(sim, rate_per_ns=rate, burst=1)
        done = [0]

        def proc():
            for _ in range(100):
                delay = bucket.delay_for()
                if delay:
                    yield sim.timeout(delay)
                done[0] += 1

        sim.spawn(proc())
        sim.run()
        # 100 ops at 5 ops/µs should take ~20 µs of virtual time.
        assert sim.now == pytest.approx(100 / 0.005, rel=0.05)

    def test_rejects_bad_rate(self, sim):
        with pytest.raises(ValueError):
            TokenBucket(sim, rate_per_ns=0)
