"""Additional TCQ/median-degree behaviours under the leader protocol."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import CombiningQueue, FlockNode, PendingSend, RpcRequest
from repro.net import build_cluster
from repro.sim import Simulator


class TestMedianDegreeWindow:
    def test_median_rounds_to_int(self):
        tcq = CombiningQueue(8)
        for degree in (1, 2):
            tcq.record_message(degree)
        # median of [1, 2] = 1.5 -> rounds to 2 (banker's rounding).
        assert tcq.median_degree() == 2

    def test_median_never_below_one(self):
        tcq = CombiningQueue(8)
        assert tcq.median_degree() == 1

    def test_counters_survive_reporting(self):
        tcq = CombiningQueue(8)
        tcq.record_message(4)
        tcq.median_degree()
        assert tcq.messages_sent == 1
        assert tcq.requests_sent == 4
        assert tcq.mean_degree == 4.0


class TestLeaderWindowSemantics:
    """The leader collects its batch *after* the combining window, so
    requests arriving during the window ride the same message."""

    def make(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=1))
        cfg = FlockConfig(qps_per_handle=1)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
        handle = client.fl_connect(server, n_qps=1)
        return sim, server, client, handle

    def test_arrival_during_window_coalesces(self):
        sim, server, client, handle = self.make()

        def first():
            yield from client.fl_call(handle, 0, 1, 64)

        def second():
            # Arrives ~60 ns after the first thread became leader —
            # inside the header+doorbell window (~140 ns).
            yield sim.timeout(60)
            yield from client.fl_call(handle, 1, 1, 64)

        sim.spawn(first())
        sim.spawn(second())
        sim.run(until=2_000_000)
        channel = handle.channels[0]
        assert channel.tcq.messages_sent == 1
        assert channel.tcq.requests_sent == 2

    def test_arrival_after_window_gets_own_message(self):
        sim, server, client, handle = self.make()

        def first():
            yield from client.fl_call(handle, 0, 1, 64)

        def late():
            yield sim.timeout(5_000)  # far outside any tenure
            yield from client.fl_call(handle, 1, 1, 64)

        sim.spawn(first())
        sim.spawn(late())
        sim.run(until=2_000_000)
        channel = handle.channels[0]
        assert channel.tcq.messages_sent == 2
        assert channel.tcq.mean_degree == 1.0
