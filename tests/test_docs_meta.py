"""Documentation hygiene: every public item in the library is documented.

Deliverable (e) requires doc comments on every public item; this test
makes that a regression-checked property rather than a promise.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SKIP_MODULES = set()


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name in SKIP_MODULES:
            continue
        yield importlib.import_module(info.name)


MODULES = list(iter_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_classes_documented(module):
    for name, cls in inspect.getmembers(module, inspect.isclass):
        if name.startswith("_") or cls.__module__ != module.__name__:
            continue
        assert cls.__doc__, "%s.%s lacks a docstring" % (module.__name__, name)


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_functions_documented(module):
    for name, fn in inspect.getmembers(module, inspect.isfunction):
        if name.startswith("_") or fn.__module__ != module.__name__:
            continue
        assert fn.__doc__, "%s.%s lacks a docstring" % (module.__name__, name)


def test_package_exports_resolve():
    """Every name in a package __all__ actually exists."""
    for module in MODULES:
        exported = getattr(module, "__all__", [])
        for name in exported:
            assert hasattr(module, name), (module.__name__, name)
