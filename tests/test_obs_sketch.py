"""Property tests for the mergeable quantile sketch.

The sketch's contract has two halves and this file pins both:

* **Accuracy** — every reported quantile is within ``alpha`` relative
  error of an exact order statistic at that rank, on adversarial
  distributions (zipfian, bimodal, constant, heavy-tailed) and on
  hypothesis-generated inputs.
* **Mergeability** — bucket-wise merge is associative, commutative, and
  produces a sketch *identical* (bucket identity, exact moments) to one
  that observed every value directly.  This is the property the
  ``--jobs N`` percentile-reporting path stands on.

A final class locks the ``Histogram`` / ``NullHistogram`` summary
schemas together so the enabled and disabled observability paths can
never drift apart.
"""

import json
import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs.registry import SUMMARY_KEYS, Histogram, NullHistogram
from repro.obs.sketch import DEFAULT_RELATIVE_ACCURACY, QuantileSketch

ALPHA = DEFAULT_RELATIVE_ACCURACY
PERCENTILES = (50.0, 99.0, 99.9)


def _sketch(values, alpha=ALPHA):
    sk = QuantileSketch(alpha)
    for v in values:
        sk.observe(v)
    return sk


def _rel_err(estimate, exact):
    if exact == 0.0:
        return abs(estimate)
    return abs(estimate - exact) / abs(exact)


def _assert_rank_error_bounded(values, alpha=ALPHA):
    """The documented guarantee: ``percentile(p)`` is within ``alpha``
    relative error of the exact order statistic at rank
    ``p/100 * (n-1)`` (floor or ceiling index — the fractional rank
    straddles two elements)."""
    sk = _sketch(values, alpha)
    s = sorted(values)
    for p in PERCENTILES:
        rank = (p / 100.0) * (len(s) - 1)
        exact_lo = s[math.floor(rank)]
        exact_hi = s[math.ceil(rank)]
        est = sk.percentile(p)
        err = min(_rel_err(est, exact_lo), _rel_err(est, exact_hi))
        assert err <= alpha + 1e-9, (
            "p%g: estimate %g vs exact [%g, %g] (err %g > alpha %g)"
            % (p, est, exact_lo, exact_hi, err, alpha))


def _zipfian(n=5000, seed=7):
    """Zipf-weighted latencies: many fast ops, a power-law tail."""
    rnd = random.Random(seed)
    ranks = range(1, 501)
    weights = [1.0 / (k ** 1.2) for k in ranks]
    return [1_000.0 * k for k in rnd.choices(ranks, weights, k=n)]


def _bimodal(n=5000, seed=11):
    """Cache-hit/cache-miss shape: 95% near 1us, 5% near 1ms."""
    rnd = random.Random(seed)
    return [rnd.uniform(900.0, 1_100.0) if rnd.random() < 0.95
            else rnd.uniform(900_000.0, 1_100_000.0) for _ in range(n)]


def _heavy_tail(n=5000, seed=13):
    rnd = random.Random(seed)
    return [1_000.0 * rnd.paretovariate(1.5) for _ in range(n)]


class TestAccuracy:
    """<=1% relative rank error at p50/p99/p999 vs exact percentiles."""

    @pytest.mark.parametrize("dist", [
        _zipfian, _bimodal, _heavy_tail,
        lambda: [42.0] * 1000,                       # constant
        lambda: [float(i + 1) for i in range(5000)], # uniform ramp
    ])
    def test_adversarial_distributions(self, dist):
        _assert_rank_error_bounded(dist())

    def test_constant_input_is_exact(self):
        sk = _sketch([3.5] * 100)
        for p in PERCENTILES:
            assert sk.percentile(p) == 3.5

    def test_negative_values_keep_the_bound(self):
        rnd = random.Random(3)
        values = [rnd.uniform(-1e6, -1.0) for _ in range(2000)]
        _assert_rank_error_bounded(values)

    def test_endpoints_clamped_to_exact_extremes(self):
        sk = _sketch([1.0, 10.0, 100.0])
        assert sk.quantile(0.0) == 1.0
        assert sk.quantile(1.0) == 100.0

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e12),
                    min_size=1, max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_hypothesis_positive_floats(self, values):
        _assert_rank_error_bounded(values)

    @given(st.lists(st.one_of(
        st.floats(min_value=1e-3, max_value=1e9),
        st.floats(min_value=-1e9, max_value=-1e-3),
        st.just(0.0)), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_hypothesis_mixed_sign_and_zero(self, values):
        _assert_rank_error_bounded(values)


class TestMoments:
    def test_count_sum_min_max_are_exact(self):
        values = _zipfian(n=1000)
        sk = _sketch(values)
        assert sk.count == len(values)
        assert sk.total == pytest.approx(sum(values), rel=1e-12)
        assert sk.min == min(values)
        assert sk.max == max(values)
        assert sk.mean == pytest.approx(sum(values) / len(values))

    def test_weighted_observe(self):
        sk = QuantileSketch()
        sk.observe(5.0, n=10)
        assert sk.count == 10
        assert sk.total == 50.0
        assert sk.percentile(50) == 5.0

    def test_nonpositive_weight_ignored(self):
        sk = QuantileSketch()
        sk.observe(5.0, n=0)
        sk.observe(5.0, n=-3)
        assert sk.count == 0


def _bucket_identity(sk):
    """Everything except ``total`` (float addition order may differ by
    an ulp across merge orders; buckets and counts may not differ at
    all)."""
    d = sk.to_dict()
    total = d.pop("total")
    return d, total


def _assert_same_sketch(a, b):
    da, ta = _bucket_identity(a)
    db, tb = _bucket_identity(b)
    assert da == db
    assert ta == pytest.approx(tb, rel=1e-12, abs=1e-9)


chunks = st.lists(
    st.lists(st.floats(min_value=1e-3, max_value=1e9), max_size=60),
    min_size=3, max_size=3)


class TestMerge:
    def test_merged_equals_whole_data_sketch(self):
        values = _bimodal(n=3000)
        whole = _sketch(values)
        parts = [_sketch(values[i::4]) for i in range(4)]
        _assert_same_sketch(QuantileSketch.merged(parts), whole)

    @given(chunks)
    @settings(max_examples=50, deadline=None)
    def test_associative(self, parts):
        left = _sketch(parts[0]).merge(_sketch(parts[1])) \
                                .merge(_sketch(parts[2]))
        right = _sketch(parts[0]).merge(
            _sketch(parts[1]).merge(_sketch(parts[2])))
        _assert_same_sketch(left, right)

    @given(chunks)
    @settings(max_examples=50, deadline=None)
    def test_commutative(self, parts):
        order_ab = QuantileSketch.merged([_sketch(p) for p in parts])
        order_ba = QuantileSketch.merged(
            [_sketch(p) for p in reversed(parts)])
        _assert_same_sketch(order_ab, order_ba)

    def test_merge_returns_self_and_accumulates(self):
        a, b = _sketch([1.0, 2.0]), _sketch([3.0])
        assert a.merge(b) is a
        assert a.count == 3

    def test_mismatched_accuracy_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_merge_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            QuantileSketch().merge({"count": 3})

    def test_merged_of_nothing_is_empty(self):
        sk = QuantileSketch.merged([])
        assert sk.count == 0
        assert sk.quantile(0.5) == 0.0


class TestEdgesAndSerialization:
    def test_empty_sketch_quantile_is_zero(self):
        assert QuantileSketch().quantile(0.5) == 0.0
        assert QuantileSketch().mean == 0.0

    def test_quantile_range_checked(self):
        sk = _sketch([1.0])
        with pytest.raises(ValueError):
            sk.quantile(1.5)
        with pytest.raises(ValueError):
            sk.percentile(101.0)

    def test_bad_accuracy_rejected(self):
        for alpha in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                QuantileSketch(alpha)

    def test_memory_stays_bounded(self):
        """Nine decades of dynamic range, 100k observations: the bucket
        count stays near ``log(max/min)/log(gamma)``, nowhere near n."""
        rnd = random.Random(5)
        sk = QuantileSketch()
        for _ in range(100_000):
            sk.observe(math.exp(rnd.uniform(0.0, math.log(1e9))))
        assert len(sk.buckets) < 1_100

    def test_roundtrip_preserves_everything(self):
        sk = _sketch(_zipfian(n=500) + [0.0, -3.0])
        clone = QuantileSketch.from_dict(
            json.loads(json.dumps(sk.to_dict())))
        assert clone.to_dict() == sk.to_dict()
        for p in PERCENTILES:
            assert clone.percentile(p) == sk.percentile(p)

    def test_empty_roundtrip(self):
        clone = QuantileSketch.from_dict(QuantileSketch().to_dict())
        assert clone.count == 0
        assert clone.min == float("inf")
        assert clone.quantile(0.5) == 0.0

    def test_to_dict_is_insertion_order_independent(self):
        fwd = _sketch([1.0, 1e6, 1e3])
        rev = _sketch([1e3, 1e6, 1.0])
        assert json.dumps(fwd.to_dict()) == json.dumps(rev.to_dict())

    def test_repr_mentions_size(self):
        assert "n=3" in repr(_sketch([1.0, 2.0, 0.0]))


class TestSummarySchemaLockstep:
    """Histogram and NullHistogram summaries may never drift apart."""

    def test_keys_identical_and_ordered(self):
        hist = Histogram("lat")
        hist.observe(5.0)
        assert tuple(hist.summary()) == SUMMARY_KEYS
        assert tuple(NullHistogram().summary()) == SUMMARY_KEYS

    def test_empty_histogram_matches_null_summary(self):
        assert Histogram("lat").summary() == NullHistogram().summary()

    def test_p999_present_and_bounded(self):
        hist = Histogram("lat")
        for v in _heavy_tail(n=2000):
            hist.observe(v)
        s = hist.summary()
        assert s["p50"] <= s["p99"] <= s["p999"] <= s["max"]
        assert s["count"] == 2000

    def test_percentile_endpoints_exact(self):
        hist = Histogram("lat")
        for v in (1.0, 50.0, 100.0):
            hist.observe(v)
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 100.0

    def test_histogram_merge_state_roundtrip(self):
        a, b = Histogram("lat"), Histogram("lat")
        for v in (1.0, 2.0, 3.0):
            a.observe(v)
        b.merge_state(a.state())
        assert b.summary() == a.summary()
