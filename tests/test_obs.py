"""The observability subsystem: spans, metrics registry, export, wiring.

Covers the span lifecycle (open/close/adopt/finish, nesting of phases),
registry arithmetic and memoization, the disabled-mode no-op contracts,
Chrome-trace round-trip validity, and the acceptance scenario: a traced
Fig. 2a sweep whose RNIC cache-miss/PCIe-stall phases grow once the QP
count overruns the NIC's QP cache.
"""

import json

import pytest

from repro.config import ClusterConfig, NicConfig
from repro.harness.microbench import (
    MicrobenchConfig,
    run_flock,
    run_raw_reads,
)
from repro.obs import (
    PHASES,
    NullRegistry,
    NullSpanLog,
    Registry,
    Span,
    SpanLog,
    Telemetry,
    chrome_trace,
    current_telemetry,
    disable,
    enable,
    format_breakdown,
    null_registry,
    null_span_log,
    write_chrome_trace,
)


class TestSpan:
    def test_lifecycle(self):
        log = SpanLog()
        span = log.begin("rpc", track="c0/t0", t=100.0, rpc_id=1)
        span.open("client_queue", 100.0)
        span.close("client_queue", 150.0)
        span.add_phase("wire", 150.0, 170.0)
        assert span.t1 is None and len(log) == 0
        span.finish(200.0)
        assert span.t1 == 200.0
        assert span.duration == 100.0
        assert len(log) == 1
        assert span.phase_total("client_queue") == 50.0
        assert span.phase_total("wire") == 20.0

    def test_finish_idempotent(self):
        log = SpanLog()
        span = log.begin("rpc", track="x", t=0.0)
        span.finish(10.0)
        span.finish(99.0)
        assert span.t1 == 10.0
        assert len(log) == 1

    def test_finish_closes_open_phases(self):
        log = SpanLog()
        span = log.begin("rpc", track="x", t=0.0)
        span.open("server_handler", 5.0)
        span.finish(12.0)
        assert span.phase_total("server_handler") == 7.0

    def test_close_unopened_phase_is_noop(self):
        log = SpanLog()
        span = log.begin("rpc", track="x", t=0.0)
        span.close("never_opened", 50.0)
        assert span.phases == []

    def test_nested_and_repeated_phases(self):
        # The same phase can occur several times (e.g. two PCIe stalls),
        # and phases may nest inside each other; totals sum all of them.
        log = SpanLog()
        span = log.begin("rpc", track="x", t=0.0)
        span.add_phase("nic_tx", 0.0, 100.0)
        span.add_phase("pcie_stall", 10.0, 30.0)
        span.add_phase("pcie_stall", 50.0, 60.0)
        span.finish(100.0)
        assert span.phase_total("pcie_stall") == 30.0
        assert span.phase_total("nic_tx") == 100.0

    def test_adopt_copies_phases(self):
        log = SpanLog()
        msg = log.begin("flock.msg", track="hw", t=0.0)
        msg.add_phase("doorbell_mmio", 0.0, 5.0)
        msg.add_phase("wire", 5.0, 15.0)
        rpc = log.begin("rpc", track="t0", t=0.0)
        rpc.adopt(msg)
        assert rpc.phase_total("doorbell_mmio") == 5.0
        assert rpc.phase_total("wire") == 10.0
        rpc2 = log.begin("rpc", track="t1", t=0.0)
        rpc2.adopt(msg, phases=["wire"])
        assert rpc2.phase_total("doorbell_mmio") == 0.0
        assert rpc2.phase_total("wire") == 10.0

    def test_bump(self):
        log = SpanLog()
        span = log.begin("rpc", track="x", t=0.0)
        span.bump("qp_misses")
        span.bump("qp_misses")
        assert span.args["qp_misses"] == 2


class TestSpanLog:
    def test_max_spans_bound(self):
        log = SpanLog(max_spans=2)
        for i in range(5):
            log.begin("s", track="x", t=float(i)).finish(float(i) + 1)
        assert len(log) == 2
        assert log.dropped == 3

    def test_breakdown(self):
        log = SpanLog()
        for _ in range(2):
            span = log.begin("rpc", track="x", t=0.0)
            span.add_phase("wire", 0.0, 10.0)
            span.add_phase("server_handler", 10.0, 40.0)
            span.finish(40.0)
        table = log.breakdown("rpc")
        assert table["wire"]["count"] == 2
        assert table["wire"]["total_ns"] == 20.0
        assert table["wire"]["mean_ns"] == 10.0
        assert table["server_handler"]["share"] == pytest.approx(0.75)
        assert log.phase_share("wire") == pytest.approx(0.25)

    def test_breakdown_filters_by_name(self):
        log = SpanLog()
        a = log.begin("rpc", track="x", t=0.0)
        a.add_phase("wire", 0.0, 10.0)
        a.finish(10.0)
        b = log.begin("flock.msg", track="x", t=0.0)
        b.add_phase("wire", 0.0, 90.0)
        b.finish(90.0)
        assert log.breakdown("rpc")["wire"]["total_ns"] == 10.0
        assert log.breakdown()["wire"]["total_ns"] == 100.0

    def test_runs_become_pids(self):
        log = SpanLog()
        p1 = log.new_run("first")
        s1 = log.begin("s", track="x", t=0.0)
        p2 = log.new_run("second")
        s2 = log.begin("s", track="x", t=0.0)
        assert (s1.pid, s2.pid) == (p1, p2)
        assert p1 != p2


class TestRegistry:
    def test_counter_math(self):
        reg = Registry()
        c = reg.counter("rnic.qp_cache.hits")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_memoized_by_name_and_labels(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", nic=1) is reg.counter("x", nic=1)
        assert reg.counter("x", nic=1) is not reg.counter("x", nic=2)

    def test_gauge(self):
        reg = Registry()
        g = reg.gauge("depth")
        g.set(7)
        assert g.value == 7
        backing = [3]
        fg = reg.gauge("live", fn=lambda: backing[0])
        backing[0] = 11
        assert fg.value == 11

    def test_histogram(self):
        reg = Registry()
        h = reg.histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        summary = h.summary()
        assert summary["count"] == 4
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)
        assert h.percentile(100) == 4.0

    def test_snapshot_and_exports(self):
        reg = Registry()
        reg.counter("a", nic=0).inc(2)
        reg.gauge("b").set(1.5)
        reg.histogram("c").observe(9.0)
        snap = reg.snapshot()
        assert snap["counters"]["a{nic=0}"] == 2
        assert snap["gauges"]["b"] == 1.5
        assert snap["histograms"]["c"]["count"] == 1
        doc = json.loads(reg.to_json())
        assert doc["counters"]["a{nic=0}"] == 2
        csv_text = reg.to_csv()
        assert csv_text.startswith("type,name,field,value\n")
        assert "counter,a{nic=0},value,2" in csv_text


class TestDisabledMode:
    def test_null_registry_instruments_are_shared_noops(self):
        assert not null_registry.enabled
        c1 = null_registry.counter("anything", lab=1)
        c2 = null_registry.counter("other")
        assert c1 is c2  # one shared singleton, no per-name allocation
        c1.inc()
        c1.inc(100)
        assert c1.value == 0
        g = null_registry.gauge("g", fn=lambda: 1 / 0)  # fn never called
        g.set(5)
        assert g.value == 0
        h = null_registry.histogram("h")
        h.observe(3.0)
        assert h.summary()["count"] == 0
        assert null_registry.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}

    def test_null_span_log(self):
        assert not null_span_log.enabled
        assert null_span_log.begin("s", track="x", t=0.0) is None
        assert len(null_span_log) == 0
        assert null_span_log.breakdown() == {}
        assert null_span_log.phase_share("wire") == 0.0

    def test_fresh_simulator_defaults_to_null(self):
        from repro.sim import Simulator
        sim = Simulator()
        assert isinstance(sim.metrics, NullRegistry)
        assert isinstance(sim.spans, NullSpanLog)


class TestChromeTrace:
    def _sample_log(self):
        log = SpanLog()
        log.new_run("runA")
        span = log.begin("rpc", track="c0/t0", t=1000.0, rpc_id=7)
        span.add_phase("wire", 1100.0, 1200.0)
        span.finish(2000.0)
        msg = log.begin("flock.msg", track="hw:c0", t=1000.0)
        msg.add_phase("doorbell_mmio", 1000.0, 1050.0)
        msg.finish(1500.0)
        return log

    def test_round_trip_validity(self, tmp_path):
        log = self._sample_log()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(log, path)
        with open(path) as fh:
            doc = json.load(fh)
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ns"
        assert doc["otherData"]["dropped_spans"] == 0
        # Only metadata and complete events; X events are self-paired.
        assert {ev["ph"] for ev in events} <= {"M", "X"}
        xs = [ev for ev in events if ev["ph"] == "X"]
        assert xs, "no span events exported"
        for ev in xs:
            assert ev["dur"] >= 0
            assert {"name", "cat", "ts", "pid", "tid"} <= set(ev)
        # Monotonic timestamps within each (pid, tid) track.
        by_track = {}
        for ev in xs:
            by_track.setdefault((ev["pid"], ev["tid"]), []).append(ev["ts"])
        for stamps in by_track.values():
            assert stamps == sorted(stamps)

    def test_names_and_units(self):
        doc = chrome_trace(self._sample_log())
        events = doc["traceEvents"]
        thread_names = {ev["args"]["name"] for ev in events
                        if ev["ph"] == "M" and ev["name"] == "thread_name"}
        assert {"c0/t0", "hw:c0"} <= thread_names
        process_names = {ev["args"]["name"] for ev in events
                         if ev["ph"] == "M" and ev["name"] == "process_name"}
        assert "runA" in process_names
        rpc = next(ev for ev in events
                   if ev["ph"] == "X" and ev["name"] == "rpc")
        assert rpc["ts"] == pytest.approx(1.0)   # 1000 ns -> 1 us
        assert rpc["dur"] == pytest.approx(1.0)  # 1000 ns span
        assert rpc["args"]["rpc_id"] == 7

    def test_format_breakdown(self):
        log = self._sample_log()
        text = format_breakdown(log.breakdown(), title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "phase" in lines[1]
        assert any("wire" in line for line in lines)
        # Canonical order: doorbell_mmio precedes wire.
        assert (text.index("doorbell_mmio") < text.index("wire"))

    def test_format_breakdown_empty(self):
        assert "(no spans recorded)" in format_breakdown({})


class TestTelemetry:
    def test_install_opens_run_scopes(self):
        from repro.sim import Simulator
        tel = Telemetry()
        sim1, sim2 = Simulator(), Simulator()
        tel.install(sim1, label="a")
        tel.install(sim2, label="b")
        assert sim1.metrics is tel.registry
        assert sim1.spans is tel.spans
        assert tel.runs == ["a", "b"]
        assert tel.spans.run_id == 2

    def test_process_wide_current(self):
        assert current_telemetry() is None
        tel = enable(Telemetry())
        try:
            assert current_telemetry() is tel
        finally:
            disable()
        assert current_telemetry() is None


class TestTracedRuns:
    """End-to-end: the harness produces spans and metrics."""

    @pytest.fixture(autouse=True)
    def _fast(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.3")

    def test_flock_run_has_full_phase_coverage(self):
        tel = Telemetry()
        cfg = MicrobenchConfig(n_clients=2, threads_per_client=4,
                               outstanding=2)
        result = run_flock(cfg, telemetry=tel)
        assert result.telemetry is tel
        table = result.breakdown()
        # Every stack layer contributed to the per-RPC breakdown.
        for phase in ("client_queue", "doorbell_mmio", "wire", "propagation",
                      "nic_rx", "server_queue", "server_handler", "response"):
            assert phase in table, "missing phase %r" % phase
            assert table[phase]["total_ns"] > 0
        assert all(phase in PHASES for phase in table)
        # Span count matches traced RPCs (all finished inside the run).
        rpc_spans = [s for s in tel.spans.spans if s.name == "rpc"]
        assert len(rpc_spans) > 0
        snap = tel.metrics_snapshot()
        assert snap["counters"]["flock.client.rpcs"] >= len(rpc_spans)
        assert snap["counters"]["flock.server.requests"] > 0
        assert snap["counters"]["net.messages"] > 0
        assert snap["histograms"]["flock.coalescing_degree"]["count"] > 0

    def test_untelemetered_run_matches_default(self):
        cfg = MicrobenchConfig(n_clients=2, threads_per_client=4)
        base = run_flock(cfg)
        traced = run_flock(cfg, telemetry=Telemetry())
        # Observability must not perturb virtual time: identical results.
        assert traced.ops == base.ops
        assert traced.latency == base.latency
        assert base.telemetry is None

    def test_fig2a_breakdown_shows_qp_cache_cliff(self):
        """Acceptance: the traced Fig. 2a sweep attributes the throughput
        collapse past the QP-cache size to RNIC cache misses / PCIe
        stalls, visible as a growing pcie_stall share."""
        cluster = ClusterConfig(nic=NicConfig(qp_cache_entries=32))
        shares, misses = {}, {}
        for qps in (16, 256):
            tel = Telemetry()
            result = run_raw_reads(qps, n_clients=8, cluster=cluster,
                                   telemetry=tel)
            shares[qps] = tel.spans.phase_share("pcie_stall")
            misses[qps] = result.extras["qp_cache_miss"]
        assert misses[16] < 0.05 < misses[256]
        assert shares[16] < 0.05, "no stalls expected while QPs fit cache"
        assert shares[256] > 5 * max(shares[16], 1e-9)
        assert shares[256] > 0.10, (
            "past the cliff PCIe stalls must dominate: %r" % shares)
