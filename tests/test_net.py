"""Network substrate: fabric transfers, loss injection, packetization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, NetConfig
from repro.net import Fabric, Node, Reassembler, build_cluster, segment
from repro.sim import Simulator

from conftest import run_gen


class TestSegment:
    def test_exact_multiple(self):
        assert segment(8192, 4096) == [4096, 4096]

    def test_remainder(self):
        assert segment(5000, 4096) == [4096, 904]

    def test_zero_payload(self):
        assert segment(0, 4096) == [0]

    def test_small(self):
        assert segment(64, 4096) == [64]

    def test_invalid(self):
        with pytest.raises(ValueError):
            segment(-1, 4096)
        with pytest.raises(ValueError):
            segment(10, 0)

    @given(st.integers(min_value=1, max_value=10_000_000),
           st.integers(min_value=1, max_value=9000))
    @settings(max_examples=50, deadline=None)
    def test_segments_sum_to_payload(self, nbytes, mtu):
        chunks = segment(nbytes, mtu)
        assert sum(chunks) == nbytes
        assert all(0 < c <= mtu for c in chunks)
        assert all(c == mtu for c in chunks[:-1])


class TestReassembler:
    def test_single_chunk_completes_immediately(self):
        r = Reassembler()
        assert r.add(1, 0, 1, "only") == ["only"]
        assert r.completed == 1

    def test_out_of_order_reassembly(self):
        r = Reassembler()
        assert r.add(7, 2, 3, "c") is None
        assert r.add(7, 0, 3, "a") is None
        assert r.add(7, 1, 3, "b") == ["a", "b", "c"]
        assert r.pending == 0

    def test_interleaved_messages(self):
        r = Reassembler()
        r.add(1, 0, 2, "1a")
        r.add(2, 0, 2, "2a")
        assert r.pending == 2
        assert r.add(2, 1, 2, "2b") == ["2a", "2b"]
        assert r.add(1, 1, 2, "1b") == ["1a", "1b"]

    def test_duplicate_chunk_rejected(self):
        r = Reassembler()
        r.add(1, 0, 2, "a")
        with pytest.raises(ValueError):
            r.add(1, 0, 2, "a")

    def test_bad_coordinates(self):
        r = Reassembler()
        with pytest.raises(ValueError):
            r.add(1, 5, 3, "x")

    @given(st.integers(min_value=1, max_value=20),
           st.randoms(use_true_random=False))
    @settings(max_examples=40, deadline=None)
    def test_any_arrival_order_reassembles(self, n_chunks, rng):
        r = Reassembler()
        order = list(range(n_chunks))
        rng.shuffle(order)
        result = None
        for idx in order:
            result = r.add(99, idx, n_chunks, "chunk%d" % idx)
        assert result == ["chunk%d" % i for i in range(n_chunks)]


class TestFabric:
    def test_transfer_timing(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        client = clients[0]

        def proc():
            delivered = yield from fabric.transfer(
                client, server, 64, 1, 2)
            return delivered, sim.now

        delivered, elapsed = run_gen(sim, proc())
        assert delivered
        cfg = fabric.cfg
        min_time = cfg.propagation_ns + client.rnic.cfg.base_latency_ns
        assert elapsed >= min_time

    def test_bigger_messages_take_longer(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        times = []

        def proc(size):
            yield from fabric.transfer(clients[0], server, size, 1, 2)
            times.append(sim.now)

        run_gen(sim, proc(64))
        small = times[-1]
        sim2 = Simulator()
        servers2, clients2, fabric2 = build_cluster(sim2, ClusterConfig(n_clients=1))
        times2 = []

        def proc2():
            yield from fabric2.transfer(clients2[0], servers2[0], 1 << 20, 1, 2)
            times2.append(sim2.now)

        run_gen(sim2, proc2())
        assert times2[-1] > small

    def test_unreliable_loss_drops(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        fabric.loss_prob = 1.0

        def proc():
            delivered = yield from fabric.transfer(
                clients[0], server, 64, 1, 2, reliable=False)
            return delivered

        assert run_gen(sim, proc()) is False
        assert fabric.messages_dropped == 1

    def test_reliable_loss_retransmits(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        fabric.loss_prob = 1.0

        def proc():
            delivered = yield from fabric.transfer(
                clients[0], server, 64, 1, 2, reliable=True)
            return delivered, sim.now

        delivered, elapsed = run_gen(sim, proc())
        assert delivered
        assert elapsed >= fabric.retransmit_ns

    def test_jitter_bounded(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        times = []

        def proc():
            yield from fabric.transfer(clients[0], server, 64, 1, 2,
                                       jitter_ns=100.0)
            times.append(sim.now)

        run_gen(sim, proc())
        base = (fabric.cfg.propagation_ns
                + clients[0].rnic.cfg.base_latency_ns)
        assert times[0] >= base


class TestBuildCluster:
    def test_topology(self, sim):
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=5, n_servers=2))
        assert len(servers) == 2 and len(clients) == 5
        names = {n.name for n in servers + clients}
        assert len(names) == 7  # all distinct

    def test_nodes_have_hardware(self, small_cluster):
        _sim, server, clients, _fabric = small_cluster
        assert len(server.cpu) == 32
        assert server.rnic.qp_cache.capacity == 560
        assert server.alloc_qpn() != server.alloc_qpn()


class TestPerPacketLoss:
    def test_reliable_pays_retransmit_per_lost_packet(self, small_cluster):
        sim, server, clients, fabric = small_cluster
        fabric.loss_prob = 1.0  # every packet loses its draw once
        nbytes = 1 << 20
        n_packets = clients[0].rnic.packets_for(nbytes)
        assert n_packets == 256

        def proc():
            t0 = sim.now
            ok = yield from fabric.transfer(clients[0], server, nbytes, 1, 2)
            return ok, sim.now - t0

        ok, elapsed = run_gen(sim, proc())
        assert ok  # RC always delivers
        assert elapsed >= n_packets * fabric.retransmit_ns

    def test_large_unreliable_messages_are_more_exposed(self, small_cluster):
        # With per-packet loss, a 1-MTU message sometimes survives a
        # lossy wire that a 256-MTU message cannot cross.
        sim, server, clients, fabric = small_cluster
        fabric.loss_prob = 0.3
        outcomes = {64: 0, 1 << 20: 0}

        def proc():
            for _ in range(30):
                for nbytes in outcomes:
                    ok = yield from fabric.transfer(
                        clients[0], server, nbytes, 1, 2, reliable=False)
                    outcomes[nbytes] += bool(ok)

        run_gen(sim, proc())
        assert outcomes[64] > 0
        assert outcomes[1 << 20] == 0  # (1 - 0.3)^256 ~ 0
        assert fabric.messages_dropped > 0


class TestReassemblerLifecycle:
    def test_pending_bytes_tracks_partials(self):
        r = Reassembler()
        r.add(1, 0, 3, nbytes=100, now=0.0)
        r.add(1, 1, 3, nbytes=100, now=10.0)
        assert r.pending == 1
        assert r.pending_bytes == 200
        assert r.add(1, 2, 3, nbytes=100, now=20.0)
        assert r.pending == 0 and r.pending_bytes == 0
        assert r.completed == 1

    def test_drop_discards_partial(self):
        r = Reassembler()
        r.add(7, 0, 2, nbytes=50)
        assert r.drop(7)
        assert not r.drop(7)  # already gone
        assert r.pending == 0 and r.pending_bytes == 0

    def test_expire_reaps_only_idle_messages(self):
        r = Reassembler()
        r.add(1, 0, 2, nbytes=10, now=0.0)      # idle since t=0
        r.add(2, 0, 3, nbytes=10, now=900.0)    # fresh
        assert r.expire(now=1000.0, timeout_ns=500.0) == 1
        assert r.expired == 1
        assert r.pending == 1  # msg 2 survived
        # The expired message can start over without a duplicate error.
        r.add(1, 0, 2, nbytes=10, now=1100.0)
        assert r.add(1, 1, 2, nbytes=10, now=1200.0)
