"""FlockServer internals: worker routing, manual dispatch, accounting."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def make(n_qps=4, n_clients=2, **flock_kwargs):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients))
    cfg = FlockConfig(qps_per_handle=n_qps, **flock_kwargs)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, req.payload, 100.0))
    nodes = [FlockNode(sim, node, fabric, cfg, seed=i)
             for i, node in enumerate(clients)]
    handles = [n.fl_connect(server, n_qps=n_qps) for n in nodes]
    return sim, server, nodes, handles


class TestWorkerRouting:
    def test_rings_spread_round_robin_over_workers(self):
        sim, server, nodes, handles = make(n_qps=4, n_clients=2)
        counts = server.server._rings_per_worker
        assert sum(counts) == 8  # 2 clients x 4 QPs
        assert max(counts) - min(counts) <= 1

    def test_requests_counted_per_server(self):
        sim, server, nodes, handles = make()

        def worker():
            for i in range(10):
                resp = yield from nodes[0].fl_call(handles[0], 0, 1, 64, i)
                assert resp.payload == i

        sim.spawn(worker())
        sim.run(until=5_000_000)
        assert server.server.requests_handled == 10
        assert server.server.messages_handled == 10


class TestServerSideResponseCoalescing:
    def test_backlogged_responses_coalesce_across_messages(self):
        """Slow handlers pile request messages up; their responses go
        back in fewer RDMA writes than messages arrived (§4.3).  Client
        coalescing is disabled so the backlog consists of single-request
        messages the server must merge on its side."""
        sim, server, nodes, handles = make(n_qps=1, n_clients=1)
        nodes[0].client.coalescing_enabled = False
        server.server.handlers[1] = lambda req: (64, None, 5_000.0)
        done = [0]

        def worker(tid):
            for _ in range(10):
                yield from nodes[0].fl_call(handles[0], tid, 1, 64)
                done[0] += 1

        for tid in range(6):
            sim.spawn(worker(tid))
        sim.run(until=50_000_000)
        assert done[0] == 60
        schannel = server.server.clients[handles[0].client_id].channels[0]
        assert schannel.posted_writes < schannel.messages_received

    def test_light_load_flushes_immediately(self):
        sim, server, nodes, handles = make(n_qps=1, n_clients=1)

        def worker():
            for _ in range(5):
                yield from nodes[0].fl_call(handles[0], 0, 1, 64)

        sim.spawn(worker())
        sim.run(until=5_000_000)
        schannel = server.server.clients[handles[0].client_id].channels[0]
        assert schannel.posted_writes == schannel.messages_received == 5
        assert schannel.response_accum == []


class TestManualDispatchDepth:
    def test_mixed_auto_and_manual_rpcs(self):
        sim, server, nodes, handles = make(n_qps=2, n_clients=1)
        server.fl_reg_manual(9)
        served = [0]

        def server_app():
            while True:
                token, request = yield from server.fl_recv_rpc()
                served[0] += 1
                yield from server.fl_send_res(token, request, 32,
                                              payload=("manual",
                                                       request.payload))

        auto, manual = [], []

        def client_app(tid):
            for i in range(5):
                resp = yield from nodes[0].fl_call(handles[0], tid, 1, 64, i)
                auto.append(resp.payload)
                resp = yield from nodes[0].fl_call(handles[0], tid, 9, 64, i)
                manual.append(resp.payload)

        sim.spawn(server_app())
        for tid in range(3):
            sim.spawn(client_app(tid))
        sim.run(until=20_000_000)
        assert len(auto) == 15 and len(manual) == 15
        assert served[0] == 15
        assert all(p[0] == "manual" for p in manual)
        # Auto-handled count excludes manual requests at dispatch time,
        # then fl_send_res adds them back.
        assert server.server.requests_handled == 30
