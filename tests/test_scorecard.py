"""Scorecards and the bench store: round-trips, gating, CLI exit codes."""

import json

import pytest

from repro.harness import RunResult, scorecard_fig2a, scorecard_fig10
from repro.harness.cli import main as cli_main
from repro.obs import (
    Scorecard,
    compare_dirs,
    compare_scorecards,
    load_scorecard,
)
from repro.obs.scorecard import Metric, scorecard_filename


def make_result(mops, median_us=2.0, p99_us=8.0, **extras):
    ops = int(mops * 1e3)  # mops == ops / duration_ns * 1e3 at 1e6 ns
    return RunResult(ops=ops, duration_ns=1e6,
                     latency={"count": ops, "median": median_us * 1e3,
                              "p99": p99_us * 1e3, "mean": median_us * 1e3,
                              "min": 1.0, "max": p99_us * 1e3},
                     extras=dict(extras))


class TestScorecard:
    def test_metric_validation(self):
        with pytest.raises(ValueError):
            Metric("x", 1.0, better="sideways")
        with pytest.raises(ValueError):
            Metric("x", 1.0, rtol=-0.1)

    def test_passed_tracks_checks(self):
        sc = Scorecard("figx")
        assert sc.passed  # vacuous
        sc.add_check("good", True)
        assert sc.passed
        sc.add_check("bad", False)
        assert not sc.passed

    def test_metric_lookup(self):
        sc = Scorecard("figx")
        sc.add_metric("a", 1.0)
        assert sc.metric("a").value == 1.0
        assert sc.metric("missing") is None

    def test_round_trip(self, tmp_path):
        sc = Scorecard("figx", "a title", meta={"bench_scale": 1.0})
        sc.add_metric("mops", 42.5, better="higher", rtol=0.1, unit="Mops")
        sc.add_check("shape", True, "holds")
        path = sc.write(str(tmp_path))
        assert path.endswith("BENCH_figx.json")
        back = load_scorecard(path)
        assert back.figure == "figx"
        assert back.metric("mops").value == 42.5
        assert back.metric("mops").rtol == 0.1
        assert back.checks[0].name == "shape" and back.checks[0].passed
        assert back.meta["bench_scale"] == 1.0

    def test_written_json_is_stable(self, tmp_path):
        sc = Scorecard("figx")
        sc.add_metric("m", 1.0)
        path = sc.write(str(tmp_path))
        data = json.load(open(path))
        assert data["figure"] == "figx" and data["passed"] is True

    def test_filename_sanitized(self):
        assert scorecard_filename("fig2a") == "BENCH_fig2a.json"
        assert scorecard_filename("fig 2/a") == "BENCH_fig_2_a.json"

    def test_format_mentions_failures(self):
        sc = Scorecard("figx", "t")
        sc.add_check("bad", False, "why")
        assert "FAIL" in sc.format() and "why" in sc.format()


class TestCompare:
    def _pair(self):
        base = Scorecard("figx", meta={"bench_scale": 1.0})
        base.add_metric("tput", 100.0, better="higher", rtol=0.05)
        base.add_metric("lat", 10.0, better="lower", rtol=0.05)
        base.add_metric("note", 1.0, better="info")
        base.add_check("shape", True)
        cur = Scorecard("figx", meta={"bench_scale": 1.0})
        cur.add_metric("tput", 100.0, better="higher")
        cur.add_metric("lat", 10.0, better="lower")
        cur.add_metric("note", 999.0, better="info")
        cur.add_check("shape", True)
        return base, cur

    def test_identical_is_ok(self):
        base, cur = self._pair()
        report = compare_scorecards(base, cur)
        assert report.ok
        assert len(report.deltas) == 3

    def test_higher_metric_drop_gates(self):
        base, cur = self._pair()
        cur.metric("tput").value = 90.0  # -10% > 5% tolerance
        report = compare_scorecards(base, cur)
        assert not report.ok
        assert [d.name for d in report.regressions] == ["tput"]

    def test_higher_metric_improvement_never_gates(self):
        base, cur = self._pair()
        cur.metric("tput").value = 500.0
        assert compare_scorecards(base, cur).ok

    def test_lower_metric_rise_gates(self):
        base, cur = self._pair()
        cur.metric("lat").value = 12.0
        report = compare_scorecards(base, cur)
        assert [d.name for d in report.regressions] == ["lat"]

    def test_info_metric_never_gates(self):
        base, cur = self._pair()
        report = compare_scorecards(base, cur)  # note drifted 1 -> 999
        assert report.ok

    def test_equal_metric_gates_both_directions(self):
        base = Scorecard("figx")
        base.add_metric("degree", 2.0, better="equal", rtol=0.10)
        for drifted in (1.5, 2.5):
            cur = Scorecard("figx")
            cur.add_metric("degree", drifted)
            assert not compare_scorecards(base, cur).ok, drifted
        cur = Scorecard("figx")
        cur.add_metric("degree", 2.1)
        assert compare_scorecards(base, cur).ok

    def test_tolerance_comes_from_baseline(self):
        base, cur = self._pair()
        cur.metric("tput").value = 90.0
        cur.metric("tput").rtol = 0.5  # current's generous rtol is ignored
        assert not compare_scorecards(base, cur).ok

    def test_newly_failing_check_gates(self):
        base, cur = self._pair()
        cur.checks[0].passed = False
        report = compare_scorecards(base, cur)
        assert not report.ok
        assert report.failed_checks

    def test_check_failing_in_both_does_not_gate(self):
        base, cur = self._pair()
        base.checks[0].passed = False
        cur.checks[0].passed = False
        assert compare_scorecards(base, cur).ok

    def test_scale_mismatch_skips_figure(self):
        base, cur = self._pair()
        cur.meta["bench_scale"] = 0.5
        cur.metric("tput").value = 1.0  # would regress hard
        report = compare_scorecards(base, cur)
        assert report.ok and not report.deltas
        assert any("bench_scale" in s for s in report.skipped)

    def test_missing_metric_is_skip_not_pass(self):
        base, cur = self._pair()
        cur.metrics = [m for m in cur.metrics if m.name != "tput"]
        report = compare_scorecards(base, cur)
        assert any("tput" in s for s in report.skipped)


class TestCompareDirs:
    def _write(self, d, figure, value, scale=1.0):
        sc = Scorecard(figure, meta={"bench_scale": scale})
        sc.add_metric("m", value, better="higher", rtol=0.05)
        sc.write(str(d))

    def test_dir_compare_and_figures_filter(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        self._write(base, "fig1", 10.0)
        self._write(base, "fig2", 10.0)
        self._write(cur, "fig1", 5.0)  # regressed
        self._write(cur, "fig2", 10.0)
        report = compare_dirs(str(base), str(cur))
        assert not report.ok
        assert {d.figure for d in report.regressions} == {"fig1"}
        only2 = compare_dirs(str(base), str(cur), figures=["fig2"])
        assert only2.ok and len(only2.deltas) == 1

    def test_missing_current_is_skip(self, tmp_path):
        base, cur = tmp_path / "base", tmp_path / "cur"
        self._write(base, "fig1", 10.0)
        cur.mkdir()
        report = compare_dirs(str(base), str(cur))
        assert report.ok
        assert any("fig1" in s for s in report.skipped)

    def test_no_baselines_is_skip(self, tmp_path):
        report = compare_dirs(str(tmp_path), str(tmp_path))
        assert report.ok and report.skipped


class TestCliBenchCompare:
    def _write(self, d, value):
        sc = Scorecard("figx", meta={"bench_scale": 1.0})
        sc.add_metric("m", value, better="higher", rtol=0.05)
        sc.write(str(d))

    def test_exit_zero_when_clean(self, tmp_path, capsys):
        self._write(tmp_path / "base", 10.0)
        self._write(tmp_path / "cur", 10.0)
        rc = cli_main(["bench-compare", "--baseline",
                       str(tmp_path / "base"), "--current",
                       str(tmp_path / "cur")])
        assert rc == 0
        assert "0 regressions" in capsys.readouterr().out

    def test_exit_nonzero_on_regression(self, tmp_path, capsys):
        self._write(tmp_path / "base", 10.0)
        self._write(tmp_path / "cur", 5.0)
        rc = cli_main(["bench-compare", "--baseline",
                       str(tmp_path / "base"), "--current",
                       str(tmp_path / "cur")])
        assert rc == 1
        assert "REGRESSION" in capsys.readouterr().out


class TestBuilders:
    """Builders condense synthetic sweeps shaped like the real ones."""

    def test_fig2a_shape_checks(self):
        results = {22: make_result(20.0, qp_cache_miss=0.0),
                   176: make_result(42.0, qp_cache_miss=0.01),
                   704: make_result(41.0, qp_cache_miss=0.2),
                   2816: make_result(5.0, qp_cache_miss=0.9)}
        sc = scorecard_fig2a(results)
        assert sc.figure == "fig2a"
        assert sc.passed, sc.format()
        assert sc.metric("peak_mops").value == pytest.approx(42.0)
        # Break the cliff: no collapse past the cache.
        results[2816] = make_result(41.0, qp_cache_miss=0.9)
        assert not scorecard_fig2a(results).passed

    def test_fig10_speedup_and_degree(self):
        results = {}
        for o, (off, on, deg) in {1: (40.0, 55.0, 1.5),
                                  8: (40.0, 70.0, 2.1)}.items():
            results[(False, o)] = make_result(off)
            results[(True, o)] = make_result(
                on, mean_coalescing_degree=deg)
        sc = scorecard_fig10(results)
        assert sc.passed, sc.format()
        assert sc.metric("speedup_o8").value == pytest.approx(70.0 / 40.0)
        assert sc.metric("degree_o8").better == "equal"
