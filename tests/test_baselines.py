"""Baseline systems: UD RPC, eRPC, FaSST, FaRM-style sharing, raw reads."""

import pytest

from repro.baselines import (
    ErpcEndpoint,
    ErpcServer,
    FasstEndpoint,
    FasstServer,
    RcRpcClient,
    RcRpcServer,
    ReadClient,
    UdEndpoint,
    UdRpcServer,
)
from repro.config import ClusterConfig, NicConfig
from repro.net import build_cluster
from repro.sim import Simulator


def cluster(n_clients=2, nic=None):
    sim = Simulator()
    cfg = ClusterConfig(n_clients=n_clients)
    if nic is not None:
        cfg.nic = nic
    servers, clients, fabric = build_cluster(sim, cfg)
    return sim, servers[0], clients, fabric


class TestUdRpc:
    def test_echo(self):
        sim, server_node, clients, fabric = cluster()
        server = UdRpcServer(sim, server_node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, ("pong", req.payload), 50.0))
        out = []

        def app():
            ep = UdEndpoint(sim, clients[0], fabric)
            resp = yield from ep.call(server, server.qp_for_client(0), 1, 64,
                                      "ping")
            out.append(resp.payload)

        sim.spawn(app())
        sim.run(until=1_000_000)
        assert out == [("pong", "ping")]

    def test_multiple_outstanding_matched_by_req_id(self):
        sim, server_node, clients, fabric = cluster()
        server = UdRpcServer(sim, server_node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, req.payload, 50.0))
        ep = UdEndpoint(sim, clients[0], fabric)
        results = []

        def app(i):
            resp = yield from ep.call(server, server.qp_for_client(0), 1, 64, i)
            results.append((i, resp.payload))

        for i in range(10):
            sim.spawn(app(i))
        sim.run(until=2_000_000)
        assert sorted(results) == [(i, i) for i in range(10)]

    def test_clients_spread_over_server_qps(self):
        sim, server_node, clients, fabric = cluster()
        server = UdRpcServer(sim, server_node, fabric, n_workers=4)
        qps = {server.qp_for_client(i) for i in range(8)}
        assert len(qps) == 4

    def test_server_charges_cpu_in_network_categories(self):
        sim, server_node, clients, fabric = cluster()
        server = UdRpcServer(sim, server_node, fabric, n_workers=1)
        server.register_handler(1, lambda req: (64, None, 10.0))

        def app():
            ep = UdEndpoint(sim, clients[0], fabric)
            for _ in range(20):
                yield from ep.call(server, server.qps[0], 1, 64)

        sim.spawn(app())
        sim.run(until=5_000_000)
        # The §2.2 claim: most server cycles are network-stack work.
        assert server_node.cpu.network_fraction() > 0.8

    def test_session_credits_bound_outstanding(self):
        sim, server_node, clients, fabric = cluster()
        server = UdRpcServer(sim, server_node, fabric, n_workers=1)
        server.register_handler(1, lambda req: (64, None, 5000.0))
        ep = UdEndpoint(sim, clients[0], fabric, session_credits=2)
        in_flight = [0]
        max_in_flight = [0]

        def app():
            in_flight[0] += 1
            max_in_flight[0] = max(max_in_flight[0], in_flight[0])
            yield from ep.call(server, server.qps[0], 1, 64)
            in_flight[0] -= 1

        for _ in range(8):
            sim.spawn(app())
        sim.run(until=5_000_000)
        # With a 2-credit window, at most 2 calls pass the credit gate at
        # once (others are blocked before sending).
        assert ep.completed == 8


class TestFasst:
    def test_drops_surface_as_lost_requests(self):
        sim, server_node, clients, fabric = cluster()
        server = FasstServer(sim, server_node, fabric, n_workers=1,
                             recv_pool_per_worker=1)
        server.register_handler(1, lambda req: (64, None, 20_000.0))
        endpoints = [FasstEndpoint(sim, clients[0], fabric,
                                   timeout_ns=100_000.0) for _ in range(8)]
        outcomes = []

        def app(ep):
            resp = yield from ep.call(server, server.qps[0], 1, 64)
            outcomes.append(resp is not None)

        for ep in endpoints:
            sim.spawn(app(ep))
        sim.run(until=2_000_000)
        lost = sum(ep.lost_requests for ep in endpoints)
        assert server.recv_drops > 0
        assert lost == server.recv_drops
        assert outcomes.count(False) == lost

    def test_no_losses_with_ample_buffers(self):
        sim, server_node, clients, fabric = cluster()
        server = FasstServer(sim, server_node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, None, 50.0))
        ep = FasstEndpoint(sim, clients[0], fabric)
        done = [0]

        def app():
            for _ in range(20):
                resp = yield from ep.call(server, server.qps[0], 1, 64)
                assert resp is not None
                done[0] += 1

        sim.spawn(app())
        sim.run(until=5_000_000)
        assert done[0] == 20 and ep.lost_requests == 0


class TestErpc:
    def test_extra_software_cost_vs_plain_ud(self):
        def run(server_cls, endpoint_cls):
            sim, server_node, clients, fabric = cluster()
            server = server_cls(sim, server_node, fabric, n_workers=1)
            server.register_handler(1, lambda req: (64, None, 50.0))
            ep = endpoint_cls(sim, clients[0], fabric)
            times = []

            def app():
                yield from ep.call(server, server.qps[0], 1, 64)
                times.append(sim.now)

            sim.spawn(app())
            sim.run(until=1_000_000)
            return times[0]

        erpc_latency = run(ErpcServer, ErpcEndpoint)
        ud_latency = run(UdRpcServer, UdEndpoint)
        assert erpc_latency > ud_latency  # CC bookkeeping costs cycles


class TestRcRpc:
    def test_echo_over_shared_qp(self):
        sim, server_node, clients, fabric = cluster()
        server = RcRpcServer(sim, server_node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, ("r", req.payload), 50.0))
        client = RcRpcClient(sim, clients[0], fabric)
        handle = client.connect(server, n_qps=1, threads_per_qp=4)
        out = []

        def app(tid):
            resp = yield from client.call(handle, tid, 1, 64, tid)
            out.append(resp.payload)

        for tid in range(4):
            sim.spawn(app(tid))
        sim.run(until=2_000_000)
        assert sorted(out) == [("r", i) for i in range(4)]

    def test_spinlock_contention_measured(self):
        sim, server_node, clients, fabric = cluster()
        server = RcRpcServer(sim, server_node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, None, 50.0))
        client = RcRpcClient(sim, clients[0], fabric)
        handle = client.connect(server, n_qps=1, threads_per_qp=4)

        def app(tid):
            for _ in range(10):
                yield from client.call(handle, tid, 1, 64)

        for tid in range(4):
            sim.spawn(app(tid))
        sim.run(until=10_000_000)
        lock = handle.channels[0].lock
        assert lock.total_acquires == 40
        assert lock.contended_acquires > 0

    def test_no_sharing_has_no_lock(self):
        sim, server_node, clients, fabric = cluster()
        server = RcRpcServer(sim, server_node, fabric)
        client = RcRpcClient(sim, clients[0], fabric)
        handle = client.connect(server, n_qps=4, threads_per_qp=1)
        assert all(ch.lock is None for ch in handle.channels)
        # Threads map to distinct QPs.
        qps = {handle.channel_for(t).index for t in range(4)}
        assert len(qps) == 4


class TestRawReads:
    def test_reads_complete(self):
        sim, server_node, clients, fabric = cluster(n_clients=1)
        region = server_node.memory.register(1 << 16)
        rc = ReadClient(sim, clients[0], fabric, server_node, region,
                        n_qps=2, outstanding_per_qp=2)
        rc.start()
        sim.run(until=200_000)
        assert rc.completed > 0

    def test_many_qps_thrash_the_cache(self):
        nic = NicConfig(qp_cache_entries=16)
        sim, server_node, clients, fabric = cluster(n_clients=1, nic=nic)
        region = server_node.memory.register(1 << 16)
        rc = ReadClient(sim, clients[0], fabric, server_node, region,
                        n_qps=64, outstanding_per_qp=1)
        rc.start()
        sim.run(until=300_000)
        assert server_node.rnic.qp_cache.stats.miss_ratio > 0.5
        assert server_node.rnic.pcie.reads_issued > 0
