"""Kernel edge cases beyond the basic suite."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    Resource,
    SimulationError,
    Simulator,
    Store,
)

from conftest import run_gen


class TestConditionFailures:
    def test_any_of_propagates_failure(self, sim):
        def proc():
            good = sim.timeout(100)
            bad = sim.event()
            bad.fail(RuntimeError("boom"))
            try:
                yield sim.any_of([good, bad])
            except RuntimeError as exc:
                return str(exc)
            return "no error"

        assert run_gen(sim, proc()) == "boom"

    def test_all_of_fails_fast(self, sim):
        def proc():
            slow = sim.timeout(1_000_000)
            bad = sim.event()
            bad.fail(ValueError("nope"))
            try:
                yield sim.all_of([slow, bad])
            except ValueError:
                return sim.now

        assert run_gen(sim, proc(), until=2_000_000) == 0

    def test_any_of_with_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()

        def proc():
            result = yield sim.any_of([done, sim.timeout(50)])
            return result[done]

        assert run_gen(sim, proc()) == "early"


class TestInterruptEdges:
    def test_interrupt_during_resource_wait_releases_nothing(self, sim):
        res = Resource(sim, 1)
        res.try_acquire()
        outcomes = []

        def waiter():
            try:
                yield res.acquire()
                outcomes.append("acquired")
            except Interrupt:
                outcomes.append("interrupted")

        proc = sim.spawn(waiter())

        def interrupter():
            yield sim.timeout(10)
            proc.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert outcomes == ["interrupted"]
        assert res.in_use == 1  # holder unaffected

    def test_double_interrupt_is_safe(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                return "once"

        proc = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(5)
            proc.interrupt()
            proc.interrupt()  # second is a no-op once finished

        sim.spawn(interrupter())
        sim.run()
        assert proc.value == "once"


class TestStoreEdges:
    def test_multiple_getters_fifo(self, sim):
        store = Store(sim)
        order = []

        def getter(tag):
            item = yield store.get()
            order.append((tag, item))

        for tag in "abc":
            sim.spawn(getter(tag))
        sim.run()
        for item in (1, 2, 3):
            store.try_put(item)
        sim.run()
        assert order == [("a", 1), ("b", 2), ("c", 3)]

    def test_blocked_putters_fifo(self, sim):
        store = Store(sim, capacity=1)
        store.try_put("x")
        done = []

        def putter(tag):
            yield store.put(tag)
            done.append(tag)

        sim.spawn(putter("p1"))
        sim.spawn(putter("p2"))
        sim.run()
        assert done == []
        ok, item = store.try_get()
        assert ok and item == "x"
        sim.run()
        assert done == ["p1"]
        ok, item = store.try_get()
        assert item == "p1"
        sim.run()
        assert done == ["p1", "p2"]


class TestClockEdges:
    def test_events_at_identical_times_fire_in_creation_order(self, sim):
        order = []
        for tag in range(5):
            ev = sim.event()
            ev.add_callback(lambda e, tag=tag: order.append(tag))
            ev.succeed(delay=100)
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_schedule_into_past_rejected(self, sim):
        sim.run(until=100)
        ev = Event(sim)
        with pytest.raises(SimulationError):
            ev.succeed(delay=-10)

    def test_zero_duration_run(self, sim):
        sim.run(until=0)
        assert sim.now == 0
