"""DES kernel: events, timeouts, processes, conditions, determinism."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    Interrupt,
    SimulationError,
    Simulator,
)

from conftest import run_gen


class TestEvent:
    def test_succeed_delivers_value(self, sim):
        ev = sim.event()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        ev.succeed(42)
        sim.run()
        assert seen == [42]

    def test_double_trigger_rejected(self, sim):
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_callback_after_processed_runs_immediately(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_fail_propagates_to_waiter(self, sim):
        ev = sim.event()

        def proc():
            with pytest.raises(ValueError):
                yield ev
            return "handled"

        p = sim.spawn(proc())
        ev.fail(ValueError("boom"))
        sim.run()
        assert p.value == "handled"


class TestTimeout:
    def test_advances_clock(self, sim):
        def proc():
            yield sim.timeout(125)
            return sim.now

        assert run_gen(sim, proc()) == 125

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1)

    def test_timeout_value(self, sim):
        def proc():
            got = yield sim.timeout(5, value="tick")
            return got

        assert run_gen(sim, proc()) == "tick"

    def test_zero_delay_fires_in_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(0)
            order.append(tag)

        sim.spawn(proc("a"))
        sim.spawn(proc("b"))
        sim.run()
        assert order == ["a", "b"]


class TestProcess:
    def test_return_value(self, sim):
        def proc():
            yield sim.timeout(1)
            return 7

        assert run_gen(sim, proc()) == 7

    def test_process_waits_on_process(self, sim):
        def child():
            yield sim.timeout(50)
            return "child-done"

        def parent():
            result = yield sim.spawn(child())
            return (result, sim.now)

        assert run_gen(sim, parent()) == ("child-done", 50)

    def test_non_generator_rejected(self, sim):
        with pytest.raises(TypeError):
            sim.spawn(42)

    def test_bad_yield_rejected(self, sim):
        def proc():
            yield "not an event"

        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_is_alive(self, sim):
        def proc():
            yield sim.timeout(10)

        p = sim.spawn(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_exception_propagates_in_strict_mode(self, sim):
        def proc():
            yield sim.timeout(1)
            raise RuntimeError("kaboom")

        sim.spawn(proc())
        with pytest.raises(RuntimeError):
            sim.run()

    def test_exception_captured_when_not_strict(self):
        sim = Simulator(strict=False)

        def proc():
            yield sim.timeout(1)
            raise RuntimeError("kaboom")

        p = sim.spawn(proc())
        sim.run()
        assert p.triggered and not p.ok


class TestInterrupt:
    def test_interrupt_wakes_sleeper(self, sim):
        def sleeper():
            try:
                yield sim.timeout(1000)
                return "slept"
            except Interrupt as intr:
                return ("interrupted", intr.cause, sim.now)

        p = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(10)
            p.interrupt(cause="wake up")

        sim.spawn(interrupter())
        sim.run()
        assert p.value == ("interrupted", "wake up", 10)

    def test_interrupt_finished_process_is_noop(self, sim):
        def proc():
            yield sim.timeout(1)

        p = sim.spawn(proc())
        sim.run()
        p.interrupt()  # must not raise

    def test_unhandled_interrupt_cancels(self, sim):
        def sleeper():
            yield sim.timeout(1000)
            return "never"

        p = sim.spawn(sleeper())

        def interrupter():
            yield sim.timeout(5)
            p.interrupt()

        sim.spawn(interrupter())
        sim.run()
        assert p.processed and p.value is None


class TestConditions:
    def test_any_of_first_wins(self, sim):
        def proc():
            fast = sim.timeout(10, value="fast")
            slow = sim.timeout(100, value="slow")
            result = yield sim.any_of([fast, slow])
            return (sim.now, list(result.values()))

        now, values = run_gen(sim, proc())
        assert now == 10
        assert values == ["fast"]

    def test_all_of_waits_for_all(self, sim):
        def proc():
            a = sim.timeout(10, value="a")
            b = sim.timeout(30, value="b")
            result = yield sim.all_of([a, b])
            return (sim.now, sorted(result.values()))

        now, values = run_gen(sim, proc())
        assert now == 30
        assert values == ["a", "b"]

    def test_empty_all_of_fires_immediately(self, sim):
        def proc():
            result = yield sim.all_of([])
            return result

        assert run_gen(sim, proc()) == {}


class TestRun:
    def test_run_until_advances_exactly(self, sim):
        sim.spawn((sim.timeout(10) for _ in range(1)))
        sim.run(until=500)
        assert sim.now == 500

    def test_run_until_past_rejected(self, sim):
        sim.run(until=100)
        with pytest.raises(SimulationError):
            sim.run(until=50)

    def test_run_until_event_detects_deadlock(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_event(ev)

    def test_events_processed_counter(self, sim):
        def proc():
            for _ in range(5):
                yield sim.timeout(1)

        sim.spawn(proc())
        sim.run()
        assert sim.events_processed >= 5


class TestDeterminism:
    @given(st.lists(st.integers(min_value=0, max_value=1000),
                    min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_firing_order_is_time_sorted(self, delays):
        sim = Simulator()
        fired = []

        def proc(d):
            yield sim.timeout(d)
            fired.append((sim.now, d))

        for d in delays:
            sim.spawn(proc(d))
        sim.run()
        assert [d for _t, d in fired] == sorted(delays)
        assert fired == sorted(fired, key=lambda x: x[0])

    @given(st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_identical_runs_produce_identical_traces(self, seed):
        import random

        def trace(seed):
            sim = Simulator()
            rng = random.Random(seed)
            out = []

            def proc(tag):
                for _ in range(5):
                    yield sim.timeout(rng.randrange(100))
                    out.append((tag, sim.now))

            for tag in range(4):
                sim.spawn(proc(tag))
            sim.run()
            return out

        assert trace(seed) == trace(seed)


class TestFastPathRegressions:
    """Pins for the kernel fast-path refactor: condition-callback
    detach, heap tie-breaking, and the ready-deque ordering rule."""

    def test_anyof_detaches_loser_callbacks(self, sim):
        """A long-lived event raced against many short ones must not
        accumulate one dead callback per race (satellite: callback list
        length is bounded)."""
        never = sim.event()

        def proc():
            for _ in range(50):
                yield sim.any_of([sim.timeout(1), never])
            return len(never.callbacks)

        assert run_gen(sim, proc()) <= 1

    def test_allof_detaches_on_failure(self, sim):
        """When one constituent fails, AllOf stops watching the rest."""
        pending = sim.event()

        def proc():
            doomed = sim.event()
            cond = sim.all_of([doomed, pending])
            doomed.fail(RuntimeError("boom"))
            try:
                yield cond
            except RuntimeError:
                pass
            return len(pending.callbacks)

        assert run_gen(sim, proc()) == 0

    def test_heap_ties_never_compare_events(self, sim):
        """Same-time heap entries are ordered by sequence number alone;
        Event deliberately defines no ordering, so a tie that fell
        through to the event objects would raise TypeError."""
        with pytest.raises(TypeError):
            sim.event() < sim.event()

        order = []

        def waiter(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)

        # Five entries at the identical timestamp, spawned in order.
        for i in range(5):
            sim.spawn(waiter(i, 7.0))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_ready_deque_preserves_heap_first_order(self, sim):
        """A heap entry scheduled *before* the clock reached t must fire
        before any zero-delay event created *at* t — the invariant that
        lets ready-deque entries skip sequence numbers entirely."""
        order = []
        wake = sim.event()

        def first():
            yield sim.timeout(5.0)
            order.append("first")
            wake.succeed()  # zero-delay: goes on the ready deque

        def second():
            yield sim.timeout(5.0)  # same timestamp, pushed before t=5
            order.append("second")

        def third():
            yield wake
            order.append("third")

        sim.spawn(first())
        sim.spawn(second())
        sim.spawn(third())
        sim.run()
        assert order == ["first", "second", "third"]

    def test_tiny_delay_rounding_keeps_order(self, sim):
        """A positive delay that rounds to now (now + d == now) must
        still fire after already-queued same-time work, not dodge the
        ordering rule via a stale heap entry."""
        order = []

        def proc():
            base = 1e18
            yield sim.timeout(base)
            yield sim.timeout(1e-9)  # rounds to now at this magnitude
            order.append("rounded")

        def other():
            yield sim.timeout(1e18)
            order.append("peer")

        sim.spawn(proc())
        sim.spawn(other())
        sim.run()
        assert order == ["peer", "rounded"]
