"""Switched-fabric congestion subsystem: switch queues, ECN/DCQCN, PFC."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import GBPS, ClusterConfig, CongestionConfig, NetConfig
from repro.net import DcqcnState, build_cluster
from repro.obs.audit import run_audit
from repro.sim import Simulator

from conftest import run_gen

LINE_RATE = 100 * GBPS  # 12.5 bytes/ns


def congested_cluster(n_clients=4, **congestion_kwargs):
    """(sim, server, clients, fabric) on the switched-fabric model."""
    congestion_kwargs.setdefault("enabled", True)
    congestion_kwargs.setdefault("honor_env", False)
    cfg = ClusterConfig(
        n_clients=n_clients,
        net=replace(NetConfig(),
                    congestion=CongestionConfig(**congestion_kwargs)))
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, cfg)
    return sim, servers[0], clients, fabric


def blast(sim, fabric, srcs, dst, n_msgs, nbytes, *, reliable=False,
          gap_ns=0.0):
    """Spawn ``n_msgs`` transfers from each source to ``dst``."""
    def sender(src, base_qpn):
        for i in range(n_msgs):
            if gap_ns:
                yield sim.timeout(gap_ns)
            yield from fabric.transfer(src, dst, nbytes, base_qpn + i, 1,
                                       reliable=reliable)

    for idx, src in enumerate(srcs):
        sim.spawn(sender(src, 1000 * (idx + 1)), name="blast%d" % idx)


class TestSwitchQueue:
    def test_depth_bounded_by_buffer_and_drops_excess(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=4096, ecn_kmin_bytes=1 << 20, ecn_kmax_bytes=2 << 20)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024)
        sim.run()
        port = fabric.switch.port_for(server.name)
        assert port.peak_depth_bytes <= 4096 + 1e-6
        assert fabric.switch.total_drops > 0
        # Tail drop conserves messages: offered = accepted + dropped.
        assert port.offered_msgs == port.accepted_msgs + port.dropped_msgs

    def test_uncontended_transfer_never_queues(self):
        sim, server, clients, fabric = congested_cluster(buffer_bytes=65536)

        def proc():
            yield from fabric.transfer(clients[0], server, 512, 1, 2)
            return sim.now

        run_gen(sim, proc())
        port = fabric.switch.port_for(server.name)
        assert port.queue_wait_ns == 0.0
        assert fabric.switch.total_drops == 0

    def test_port_utilization_between_zero_and_one(self):
        sim, server, clients, fabric = congested_cluster(buffer_bytes=65536)
        blast(sim, fabric, clients, server, n_msgs=10, nbytes=2048)
        sim.run()
        port = fabric.switch.port_for(server.name)
        assert 0.0 < port.utilization(sim.now) <= 1.0

    def test_n_ports_counts_every_node(self):
        sim, server, clients, fabric = congested_cluster(n_clients=4)
        assert fabric.n_ports == 5


class TestEcnMarking:
    def test_no_marks_below_kmin(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=4096, ecn_kmin_bytes=1 << 20, ecn_kmax_bytes=2 << 20)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024)
        sim.run()
        assert fabric.switch.total_ecn_marks == 0

    def test_marks_above_kmax(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=65536, ecn_kmin_bytes=256, ecn_kmax_bytes=512,
            ecn_pmax=1.0)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024)
        sim.run()
        assert fabric.switch.total_ecn_marks > 0

    def test_marks_on_reliable_flows_deliver_cnps_and_throttle(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=65536, ecn_kmin_bytes=256, ecn_kmax_bytes=512,
            ecn_pmax=1.0)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024,
              reliable=True)
        sim.run()
        assert fabric.switch.total_ecn_marks > 0
        assert fabric.cnps_delivered > 0
        assert any(st.cnps > 0 and st.rate_cuts > 0
                   for st in fabric._dcqcn.values())

    def test_unreliable_flows_get_no_cnps(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=65536, ecn_kmin_bytes=256, ecn_kmax_bytes=512,
            ecn_pmax=1.0)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024,
              reliable=False)
        sim.run()
        assert fabric.switch.total_ecn_marks > 0
        assert fabric.cnps_delivered == 0


class TestDcqcn:
    def cfg(self, **kw):
        return replace(CongestionConfig(enabled=True), **kw)

    def test_line_rate_flow_is_not_paced(self):
        state = DcqcnState(self.cfg(), LINE_RATE)
        assert not state.throttled
        assert state.send_delay(4096, now=100.0) == 0.0
        assert state.clearance(now=100.0) == 0.0
        assert state._next_allowed == 0.0  # pacing clock untouched

    def test_cnp_cuts_rate_toward_floor(self):
        state = DcqcnState(self.cfg(), LINE_RATE)
        state.on_cnp(now=0.0)
        assert state.throttled
        assert state.rc == pytest.approx(LINE_RATE / 2)
        # Cuts inside the decrease interval coalesce into one event.
        state.on_cnp(now=1.0)
        assert state.rate_cuts == 1
        for t in range(1, 50):
            state.on_cnp(now=t * 20_000.0)
        assert state.rc >= self.cfg().dcqcn_min_rate_bytes_per_ns - 1e-12

    def test_recovery_returns_to_line_rate(self):
        cfg = self.cfg()
        state = DcqcnState(cfg, LINE_RATE)
        state.on_cnp(now=0.0)
        assert state.throttled
        state.maybe_increase(now=1_000_000.0)
        assert not state.throttled
        assert state.rc == LINE_RATE and state.rt == LINE_RATE

    def test_throttled_flow_paces_at_current_rate(self):
        state = DcqcnState(self.cfg(), LINE_RATE)
        state.on_cnp(now=0.0)
        rc = state.rc
        assert state.send_delay(4096, now=0.0) == 0.0
        # The second message must wait for the first's serialization.
        delay = state.send_delay(4096, now=0.0)
        assert delay == pytest.approx(4096 / rc)
        assert state.throttle_ns == pytest.approx(delay)

    def test_clearance_matches_pacing_backlog(self):
        state = DcqcnState(self.cfg(), LINE_RATE)
        state.on_cnp(now=0.0)
        state.send_delay(4096, now=0.0)
        clearance = state.clearance(now=0.0)
        assert clearance == pytest.approx(4096 / state.rc)
        # After waiting out the clearance the flow may post immediately.
        assert state.send_delay(4096, now=clearance) == 0.0


class TestPfc:
    def test_pfc_never_drops_but_pauses(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=4096, pfc=True, pfc_xoff_bytes=2048,
            pfc_xon_bytes=1024, ecn_kmin_bytes=1 << 20,
            ecn_kmax_bytes=2 << 20)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024,
              reliable=True)
        sim.run()
        sw = fabric.switch
        assert sw.total_drops == 0
        assert sw.total_pause_events > 0
        port = sw.port_for(server.name)
        assert port.offered_msgs == port.accepted_msgs

    def test_pause_blocks_innocent_flow_head_of_line(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=4096, pfc=True, pfc_xoff_bytes=2048,
            pfc_xon_bytes=1024, ecn_kmin_bytes=1 << 20,
            ecn_kmax_bytes=2 << 20)
        sw = fabric.switch
        port = sw.port_for(server.name)
        # Manufacture a hot server port: backlog drains to XON (so the
        # PAUSE lifts) exactly 10us from now, and client0 is XOFF'd.
        pause_ns = 10_000.0
        port.busy_until = sim.now + pause_ns + sw.cfg.pfc_xon_bytes / sw.rate
        sw._assert_pause(port, clients[0].name)
        assert sw.is_paused(clients[0].name)

        def innocent():
            t0 = sim.now
            yield from fabric.transfer(clients[0], clients[1], 64, 7, 8)
            return sim.now - t0

        # Head-of-line blocking: client1's port is idle, yet the message
        # waits out the PAUSE asserted for the server port.
        elapsed = run_gen(sim, innocent())
        assert elapsed >= pause_ns
        assert not sw.is_paused(clients[0].name)
        # The same message with no PAUSE in force is far faster.
        again = run_gen(sim, innocent())
        assert again < pause_ns / 2


class TestLossByteConservation:
    @given(st.floats(min_value=0.05, max_value=0.95),
           st.integers(min_value=1, max_value=6),
           st.integers(min_value=64, max_value=20_000))
    @settings(max_examples=20, deadline=None)
    def test_per_packet_loss_preserves_byte_conservation(
            self, loss_prob, n_msgs, nbytes):
        sim = Simulator()
        servers, clients, fabric = build_cluster(
            sim, ClusterConfig(n_clients=2))
        fabric.loss_prob = loss_prob

        def sender(src, reliable, base_qpn):
            for i in range(n_msgs):
                yield from fabric.transfer(src, servers[0], nbytes,
                                           base_qpn + i, 1,
                                           reliable=reliable)

        sim.spawn(sender(clients[0], True, 100), name="rc")
        sim.spawn(sender(clients[1], False, 200), name="ud")
        sim.run()
        report = run_audit(sim)
        assert report.ok, report.format()

    def test_switch_audit_passes_after_incast(self):
        sim, server, clients, fabric = congested_cluster(
            buffer_bytes=4096, ecn_kmin_bytes=512, ecn_kmax_bytes=1024,
            ecn_pmax=0.5)
        blast(sim, fabric, clients, server, n_msgs=20, nbytes=1024,
              reliable=True)
        sim.run()
        report = run_audit(sim)
        assert report.ok, report.format()
