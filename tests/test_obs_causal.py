"""Causal wait-graph capture, critical paths, attribution, what-if.

Covers the typed wait-edge producers (generic resource acquisition,
PCIe cache-miss fetches, credit accounting, the scheduler hold ledger),
the span-level satellites (double-open, null-log immutability, adopt
ownership, breakdown memoisation), the critical-path walker on
hand-built spans, the attribution/folded-stack/what-if math, end-of-run
live-span flushing, and the Fig. 2a acceptance scenario: attribution
pins the post-cliff collapse on ``pcie_stall`` and the what-if bound
tracks the measured recovery when the QP cache is sized to fit.
"""

import json

import pytest

from repro.config import ClusterConfig, NicConfig
from repro.flock.qp_scheduler import HoldLedger
from repro.harness.microbench import run_raw_reads
from repro.hw.pcie import PcieLink
from repro.obs import (
    GAP_RESOURCE,
    RESOURCES,
    NullSpanLog,
    SpanLog,
    Telemetry,
    attribute,
    attribution_report,
    critical_path,
    critical_paths,
    folded_stacks,
    what_if,
    what_if_all,
)
from repro.sim import Resource, Simulator


def _span(log, t0, t1, edges=(), name="rpc"):
    """A finished span with the given wait edges."""
    span = log.begin(name, track="t", t=t0)
    for resource, e0, e1 in edges:
        span.wait(resource, e0, e1)
    span.finish(t1)
    return span


# ---------------------------------------------------------------------------
# Wait-edge producers
# ---------------------------------------------------------------------------

class TestEdgeProducers:
    def test_contended_resource_records_edge(self, sim):
        res = Resource(sim, capacity=1, name="widget")
        log = SpanLog()
        span = log.begin("job", track="t", t=0.0)

        def holder():
            yield res.acquire()
            yield sim.timeout(50)
            res.release()

        def waiter():
            yield sim.timeout(10)
            yield res.acquire(span)
            res.release()
            span.finish(sim.now)

        sim.spawn(holder())
        sim.spawn(waiter())
        sim.run()
        assert span.edges == [("widget", 10.0, 50.0)]
        assert res.contended == 1
        assert res.wait_ns == 40.0

    def test_uncontended_acquire_leaves_no_edge(self, sim):
        res = Resource(sim, capacity=2, name="widget")
        log = SpanLog()
        span = log.begin("job", track="t", t=0.0)
        ev = res.acquire(span)
        assert ev.triggered
        span.finish(5.0)
        assert span.edges == []
        assert res.wait_ns == 0.0

    def test_pcie_read_records_stall_edge(self, sim):
        link = PcieLink(sim, read_latency_ns=100.0, slots=1)
        log = SpanLog()
        spans = [log.begin("op%d" % i, track="t", t=0.0) for i in range(2)]

        def fetch(span):
            yield from link.read(span)
            span.finish(sim.now)

        for span in spans:
            sim.spawn(fetch(span))
        sim.run()
        # First read: pure latency; second also queues behind the slot.
        assert spans[0].edges == [("pcie_stall", 0.0, 100.0)]
        assert spans[1].edges == [("pcie_stall", 0.0, 200.0)]

    def test_stuck_pcie_read_survives_flush(self, sim):
        link = PcieLink(sim, read_latency_ns=100.0, slots=1)
        log = SpanLog()
        spans = [log.begin("op%d" % i, track="t", t=0.0) for i in range(3)]

        def fetch(span):
            yield from link.read(span)
            span.finish(sim.now)

        for span in spans:
            sim.spawn(fetch(span))
        sim.run(until=150.0)  # second read mid-flight, third still queued
        assert len(log) == 1 and log.live == 2
        flushed = log.flush(sim.now)
        assert flushed == 2 and log.live == 0
        stuck = [s for s in log.spans if s.args.get("truncated")]
        assert {tuple(s.edges[0]) for s in stuck} == {
            ("pcie_stall", 0.0, 150.0)}

    def test_hold_ledger_windows(self):
        ledger = HoldLedger()
        assert ledger.release("qp3", 10.0) == 0.0
        ledger.hold("qp3", 100.0)
        ledger.hold("qp3", 200.0)  # keeps the original timestamp
        assert ledger.held_since("qp3") == 100.0
        assert ledger.active_holds == 1
        assert ledger.release("qp3", 400.0) == 300.0
        assert ledger.holds == 1
        assert ledger.total_hold_ns == 300.0
        assert ledger.active_holds == 0


# ---------------------------------------------------------------------------
# Span satellites
# ---------------------------------------------------------------------------

class TestSpanSatellites:
    def test_double_open_keeps_prior_interval(self):
        log = SpanLog()
        span = log.begin("rpc", track="t", t=0.0)
        span.open("pcie_stall", 10.0)
        span.open("pcie_stall", 30.0)  # re-open: prior interval kept
        span.close("pcie_stall", 45.0)
        span.finish(50.0)
        assert ("pcie_stall", 10.0, 30.0) in span.phases
        assert ("pcie_stall", 30.0, 45.0) in span.phases
        assert span.phase_total("pcie_stall") == 35.0

    def test_null_span_log_is_immutable(self):
        null = NullSpanLog()
        assert null.spans == ()
        with pytest.raises(AttributeError):
            null.spans.append(object())
        assert null.flush(100.0) == 0
        assert null.breakdown() == {}

    def test_adopt_claim_dedups_breakdown(self):
        log = SpanLog()
        hw = log.begin("msg", track="hw", t=0.0)
        hw.add_phase("wire", 0.0, 10.0)
        hw.wait("wire", 0.0, 10.0)
        rpc = log.begin("rpc", track="c", t=0.0)
        rpc.adopt(hw, claim=True)
        assert hw.is_donor
        hw.finish(10.0)
        rpc.finish(12.0)
        plain = log.breakdown()
        assert plain["wire"]["total_ns"] == 20.0  # double-counted
        dedup = log.breakdown(dedup=True)
        assert dedup["wire"]["total_ns"] == 10.0  # adopter owns it
        # Donor spans never root a critical path of their own.
        assert [p.span.name for p in critical_paths(log)] == ["rpc"]

    def test_adopt_without_claim_keeps_both(self):
        log = SpanLog()
        hw = log.begin("msg", track="hw", t=0.0)
        hw.add_phase("wire", 0.0, 10.0)
        rpc = log.begin("rpc", track="c", t=0.0)
        rpc.adopt(hw)
        assert not hw.is_donor
        hw.finish(10.0)
        rpc.finish(12.0)
        assert log.breakdown(dedup=True)["wire"]["total_ns"] == 20.0

    def test_breakdown_memoised_per_span_count(self):
        log = SpanLog()
        span = log.begin("rpc", track="t", t=0.0)
        span.add_phase("wire", 0.0, 5.0)
        span.finish(10.0)
        first = log.breakdown()
        assert log.breakdown() is first  # cache hit: same object
        _span(log, 0.0, 20.0)
        assert log.breakdown() is not first  # new span invalidates


# ---------------------------------------------------------------------------
# Critical-path extraction
# ---------------------------------------------------------------------------

class TestCriticalPath:
    def test_unfinished_span_rejected(self):
        log = SpanLog()
        span = log.begin("rpc", track="t", t=0.0)
        with pytest.raises(ValueError):
            critical_path(span)

    def test_segments_tile_span_exactly(self):
        log = SpanLog()
        span = _span(log, 0.0, 100.0,
                     edges=[("pcie_stall", 10.0, 30.0),
                            ("wire", 60.0, 80.0)])
        path = critical_path(span)
        assert path.segments[0].t0 == span.t0
        assert path.segments[-1].t1 == span.t1
        for prev, cur in zip(path.segments, path.segments[1:]):
            assert prev.t1 == cur.t0
        assert sum(s.duration for s in path.segments) == span.duration
        assert [s.resource for s in path.segments] == [
            GAP_RESOURCE, "pcie_stall", GAP_RESOURCE, "wire", GAP_RESOURCE]

    def test_overlapping_edges_pick_longest_chain(self):
        log = SpanLog()
        span = _span(log, 0.0, 100.0,
                     edges=[("propagation", 0.0, 85.0),
                            ("wire", 80.0, 100.0)])
        path = critical_path(span)
        assert [(s.resource, s.t0, s.t1) for s in path.segments] == [
            ("propagation", 0.0, 80.0), ("wire", 80.0, 100.0)]

    def test_equal_reach_ties_break_by_stack_order(self):
        log = SpanLog()
        span = _span(log, 0.0, 50.0,
                     edges=[("wire", 0.0, 50.0),
                            ("credit_wait", 0.0, 50.0)])
        path = critical_path(span)
        assert RESOURCES.index("credit_wait") < RESOURCES.index("wire")
        assert [s.resource for s in path.segments] == ["credit_wait"]

    def test_edges_clamped_and_out_of_range_dropped(self):
        log = SpanLog()
        span = _span(log, 10.0, 50.0,
                     edges=[("wire", 0.0, 20.0),       # clamps to 10..20
                            ("cq_poll", 60.0, 90.0)])  # outside: dropped
        path = critical_path(span)
        assert [(s.resource, s.t0, s.t1) for s in path.segments] == [
            ("wire", 10.0, 20.0), (GAP_RESOURCE, 20.0, 50.0)]

    def test_critical_paths_filters(self):
        log = SpanLog()
        _span(log, 0.0, 10.0, name="rpc")
        _span(log, 0.0, 10.0, name="msg")
        assert len(critical_paths(log)) == 2
        assert len(critical_paths(log, name="rpc")) == 1
        run1 = log.spans[0].pid
        assert len(critical_paths(log, run=run1)) == 2
        assert critical_paths(log, run=run1 + 1) == []


# ---------------------------------------------------------------------------
# Attribution, folded stacks, what-if
# ---------------------------------------------------------------------------

class TestAttribution:
    def _paths(self):
        log = SpanLog()
        a = _span(log, 0.0, 100.0, edges=[("pcie_stall", 0.0, 40.0)])
        b = _span(log, 0.0, 100.0, edges=[("pcie_stall", 0.0, 100.0)])
        return [critical_path(a), critical_path(b)]

    def test_shares_sum_to_one(self):
        table = attribute(self._paths())
        assert sum(cell["share"] for cell in table.values()) \
            == pytest.approx(1.0, abs=1e-12)
        assert table["pcie_stall"]["total_ns"] == 140.0
        assert table["pcie_stall"]["count"] == 2
        assert table[GAP_RESOURCE]["total_ns"] == 60.0
        # Ordered by descending contribution.
        assert list(table) == ["pcie_stall", GAP_RESOURCE]

    def test_p99_interpolates_segment_durations(self):
        table = attribute(self._paths())
        # Two pcie segments of 40 and 100 ns: p99 = 40 + 0.99 * 60.
        assert table["pcie_stall"]["p99_ns"] == pytest.approx(99.4)

    def test_folded_stacks_exact_bytes(self):
        text = folded_stacks(self._paths())
        assert text == ("rpc;cpu 60\n"
                        "rpc;pcie_stall 140\n")
        assert folded_stacks([]) == ""

    def test_what_if_math(self):
        paths = self._paths()
        report = what_if(paths, "pcie_stall")
        assert report["total_ns"] == 200.0
        assert report["resource_ns"] == 140.0
        assert report["speedup_bound"] == pytest.approx(200.0 / 60.0)
        assert what_if(paths, "wire")["speedup_bound"] == 1.0
        assert what_if([], "pcie_stall")["speedup_bound"] == 1.0

    def test_what_if_unbounded_when_fully_blocked(self):
        log = SpanLog()
        span = _span(log, 0.0, 50.0, edges=[("wire", 0.0, 50.0)])
        bound = what_if([critical_path(span)], "wire")["speedup_bound"]
        assert bound == float("inf")

    def test_report_bundles_everything(self):
        rep = attribution_report(self._paths())
        assert rep["paths"] == 2
        assert rep["critical_path_ns"] == 200.0
        assert set(rep["what_if"]) == set(rep["attribution"])


# ---------------------------------------------------------------------------
# Live-span flushing
# ---------------------------------------------------------------------------

class TestFlush:
    def test_flush_closes_open_waits(self):
        log = SpanLog()
        span = log.begin("rpc", track="t", t=0.0)
        span.wait_begin("pcie_stall", 5.0)
        assert log.flush(40.0) == 1
        assert span.t1 == 40.0
        assert span.args["truncated"] is True
        assert span.edges == [("pcie_stall", 5.0, 40.0)]

    def test_telemetry_flushes_before_analysis(self):
        tel = Telemetry()
        sim = Simulator()
        tel.install(sim, label="demo")
        span = sim.spans.begin("rpc", track="t", t=0.0)
        span.wait("wire", 0.0, 0.0)  # zero-length: dropped
        span.wait_begin("credit_wait", 0.0)

        def advance():
            yield sim.timeout(30.0)

        sim.spawn(advance())
        sim.run()
        paths = tel.critical_paths()
        assert len(paths) == 1
        assert paths[0].span.args.get("truncated") is True
        assert paths[0].resource_ns("credit_wait") == 30.0

    def test_install_flushes_previous_run(self):
        tel = Telemetry()
        sim1 = Simulator()
        tel.install(sim1, label="one")
        stale = sim1.spans.begin("rpc", track="t", t=0.0)

        def advance(sim):
            yield sim.timeout(20.0)

        sim1.spawn(advance(sim1))
        sim1.run()
        sim2 = Simulator()
        tel.install(sim2, label="two")
        # The stale span was flushed at sim1's final clock, into run 1.
        assert stale.t1 == 20.0
        run_one = [rid for rid, label in tel.spans.run_labels.items()
                   if label == "one"][0]
        assert [p.span for p in tel.critical_paths(run=run_one)] == [stale]


# ---------------------------------------------------------------------------
# Fig. 2a acceptance: attribution explains the cliff
# ---------------------------------------------------------------------------

def _attribution_for(qps, **kwargs):
    tel = Telemetry()
    result = run_raw_reads(qps, telemetry=tel, audit=False, **kwargs)
    return result, tel


class TestFig2aAcceptance:
    def test_pcie_share_crosses_the_cliff(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
        _, pre_tel = _attribution_for(176)
        pre = pre_tel.attribution(name="wr.read")
        assert pre.get("pcie_stall", {"share": 0.0})["share"] < 0.05

        _, post_tel = _attribution_for(1100)
        post = post_tel.attribution(name="wr.read")
        pcie_share = post["pcie_stall"]["share"]
        assert pcie_share > 0.35
        assert pcie_share == max(cell["share"] for cell in post.values())
        for table in (pre, post):
            assert sum(cell["share"] for cell in table.values()) \
                == pytest.approx(1.0, abs=1e-6)

    def test_what_if_tracks_fitted_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
        base, tel = _attribution_for(2200)
        bound = tel.what_if(name="wr.read")["pcie_stall"]
        big_cache = ClusterConfig(nic=NicConfig(qp_cache_entries=4096))
        fitted = run_raw_reads(2200, cluster=big_cache, audit=False)
        actual = fitted.mops / base.mops
        assert actual > 1.5  # sizing the cache really removes the cliff
        assert abs(bound - actual) / actual <= 0.25

    def test_attribution_is_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "1")
        outputs = []
        for _ in range(2):
            _, tel = _attribution_for(176)
            paths = tel.critical_paths(name="wr.read")
            outputs.append((folded_stacks(paths),
                            json.dumps(attribution_report(paths),
                                       sort_keys=True)))
        assert outputs[0] == outputs[1]
