"""Credit grant delivery paths: piggybacked vs dedicated (§5.1/§7)."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator, Tracer


def make(credit_batch=8, handler_ns=100.0):
    sim = Simulator()
    servers, clients, fabric = build_cluster(sim, ClusterConfig(n_clients=1))
    cfg = FlockConfig(qps_per_handle=1, credit_batch=credit_batch,
                      credit_renew_threshold=max(1, credit_batch // 2))
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, None, handler_ns))
    client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
    tracer = Tracer(sim)
    server.server.tracer = tracer
    handle = client.fl_connect(server, n_qps=1)
    return sim, server, client, handle, tracer


class TestGrantPaths:
    def test_heavy_pipeline_piggybacks_grants(self):
        """With a deep server-side backlog (slow handlers), grants ride
        the response messages instead of going out dedicated."""
        sim, server, client, handle, tracer = make(credit_batch=8,
                                                   handler_ns=3000.0)

        def worker(tid):
            for _ in range(30):
                yield from client.fl_call(handle, tid, 1, 64)

        for tid in range(8):
            sim.spawn(worker(tid))
        sim.run(until=20_000_000)
        assert tracer.count("grant_piggybacked") > 0
        # Grants arrived and kept traffic flowing well beyond the
        # bootstrap batch.
        assert handle.rpcs_completed == 240

    def test_serial_sender_gets_dedicated_grants(self):
        """A single serial closed loop drains the ring before the
        renewal reaches the scheduler — grants go out dedicated."""
        sim, server, client, handle, tracer = make(credit_batch=4)

        def worker():
            for _ in range(20):
                yield from client.fl_call(handle, 0, 1, 64)

        sim.spawn(worker())
        sim.run(until=20_000_000)
        assert handle.rpcs_completed == 20
        assert tracer.count("grant_dedicated") > 0

    def test_grants_respect_batch_size(self):
        sim, server, client, handle, tracer = make(credit_batch=4)
        channel = handle.channels[0]
        grants = []
        original = channel.credits.on_grant

        def spy(grant):
            grants.append(grant.credits)
            original(grant)

        channel.credits.on_grant = spy

        def worker():
            for _ in range(12):
                yield from client.fl_call(handle, 0, 1, 64)

        sim.spawn(worker())
        sim.run(until=20_000_000)
        assert grants
        assert all(g == 4 for g in grants)  # C per grant, never declined
