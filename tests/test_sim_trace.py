"""Tracing and telemetry."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import NullTracer, Simulator, TimeSeries, Tracer, null_tracer


class TestTracer:
    def test_records_events_with_time(self, sim):
        tracer = Tracer(sim)

        def proc():
            yield sim.timeout(100)
            tracer.emit("tick", value=1)
            yield sim.timeout(100)
            tracer.emit("tick", value=2)
            tracer.emit("other")

        sim.spawn(proc())
        sim.run()
        assert tracer.count("tick") == 2
        assert tracer.count("other") == 1
        ticks = tracer.of_kind("tick")
        assert [ev.t for ev in ticks] == [100, 200]
        assert ticks[1].fields["value"] == 2

    def test_only_filter(self, sim):
        tracer = Tracer(sim, only={"keep"})
        tracer.emit("keep")
        tracer.emit("drop")
        assert tracer.count("keep") == 1
        assert tracer.count("drop") == 0
        assert len(tracer.events) == 1

    def test_max_events_bound(self, sim):
        tracer = Tracer(sim, max_events=2)
        for i in range(5):
            tracer.emit("e", i=i)
        assert len(tracer.events) == 2
        assert tracer.dropped == 3
        # Counts track *recorded* events: count() always matches of_kind().
        assert tracer.count("e") == 2
        assert tracer.count("e") == len(tracer.of_kind("e"))

    def test_between(self, sim):
        tracer = Tracer(sim)

        def proc():
            for _ in range(5):
                yield sim.timeout(100)
                tracer.emit("x")

        sim.spawn(proc())
        sim.run()
        assert len(tracer.between(150, 350)) == 2

    def test_csv_export(self, sim):
        tracer = Tracer(sim)
        tracer.emit("a", value=1)
        tracer.emit("b", size=2)
        csv_text = tracer.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "t,kind,value,size"
        assert len(lines) == 3

    def test_empty_csv(self, sim):
        assert Tracer(sim).to_csv() == ""

    def test_null_tracer_is_silent(self):
        null_tracer.emit("anything", x=1)
        assert null_tracer.count("anything") == 0
        assert not NullTracer.enabled


class TestTimeSeries:
    def test_samples_gauges(self, sim):
        series = TimeSeries(sim, interval_ns=100)
        value = [0]
        series.add_gauge("v", lambda: value[0])

        def proc():
            for i in range(5):
                value[0] = i
                yield sim.timeout(100)

        series.start()
        sim.spawn(proc())
        sim.run(until=450)
        samples = series.series("v")
        assert len(samples) == 4
        assert series.last("v") == 3.0
        # The sampler fires before the same-instant update (FIFO ties).
        assert [v for _t, v in samples] == [0.0, 1.0, 2.0, 3.0]
        assert series.mean("v") == pytest.approx(1.5)

    def test_csv(self, sim):
        series = TimeSeries(sim, interval_ns=50)
        series.add_gauge("a", lambda: 1)
        series.add_gauge("b", lambda: 2)
        series.start()
        sim.run(until=120)
        csv_text = series.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "t,a,b"
        assert len(lines) == 3

    def test_csv_duplicate_timestamps(self, sim):
        # Two samples of the same series at one instant must both appear.
        series = TimeSeries(sim, interval_ns=50)
        series.samples["a"].extend([(100.0, 1.0), (100.0, 2.0), (200.0, 3.0)])
        series.samples["b"].append((100.0, 9.0))
        lines = series.to_csv().strip().splitlines()
        assert lines[0] == "t,a,b"
        assert lines[1] == "100.0,1.0,9.0"
        assert lines[2] == "100.0,2.0,"
        assert lines[3] == "200.0,3.0,"
        assert len(lines) == 4

    def test_bad_interval(self, sim):
        with pytest.raises(ValueError):
            TimeSeries(sim, interval_ns=0)

    def test_start_idempotent(self, sim):
        series = TimeSeries(sim, interval_ns=100)
        series.add_gauge("x", lambda: 1)
        series.start()
        series.start()
        sim.run(until=250)
        assert len(series.series("x")) == 2  # not doubled


class TestFlockIntegration:
    def test_tracer_sees_coalescing_and_scheduling(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=1))
        cfg = FlockConfig(qps_per_handle=2, sched_interval_ns=150_000.0,
                          thread_sched_interval_ns=150_000.0)
        server = FlockNode(sim, servers[0], fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        client = FlockNode(sim, clients[0], fabric, cfg, seed=1)
        tracer = Tracer(sim)
        client.client.tracer = tracer
        server.server.tracer = tracer
        handle = client.fl_connect(server, n_qps=2)

        def worker(tid):
            for _ in range(20):
                yield from client.fl_call(handle, tid, 1, 64)

        for tid in range(8):
            sim.spawn(worker(tid))
        sim.run(until=3_000_000)
        messages = tracer.of_kind("coalesced_message")
        assert messages
        total_reqs = sum(ev.fields["degree"] for ev in messages)
        assert total_reqs == 160
        # Byte sizes match the message-layout formula.
        from repro.flock import coalesced_size
        for ev in messages[:10]:
            assert ev.fields["bytes"] >= coalesced_size([64])
