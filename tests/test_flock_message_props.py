"""Property tests across the TCQ + credits + ring state machines."""

import random

from hypothesis import given, settings, strategies as st

from repro.flock import (
    CombiningQueue,
    CreditGrant,
    CreditState,
    PendingSend,
    RpcRequest,
    SenderView,
)
from repro.sim import Simulator


def slot(i):
    return PendingSend(RpcRequest(thread_id=i, seq_id=i, rpc_id=0, size=64),
                       0.0)


class TestTcqProperties:
    @given(st.integers(min_value=1, max_value=32),
           st.integers(min_value=1, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_collect_until_empty_preserves_all_slots(self, max_combine, n):
        """Every enqueued slot is collected exactly once, in order."""
        tcq = CombiningQueue(max_combine)
        for i in range(n):
            tcq.enqueue(slot(i))
        seen = []
        while True:
            batch = tcq.collect()
            if not batch:
                assert not tcq.handoff()
                break
            assert len(batch) <= max_combine
            seen.extend(s.request.thread_id for s in batch)
            tcq.handoff()
        assert seen == list(range(n))

    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_exactly_one_leader_at_a_time(self, ops):
        """Random interleaving of enqueues and leader cycles never yields
        two concurrent leaders."""
        tcq = CombiningQueue(4)
        leaders = 0
        i = 0
        for do_enqueue in ops:
            if do_enqueue:
                if tcq.enqueue(slot(i)):
                    leaders += 1
                i += 1
                assert leaders <= 1
            elif leaders:
                tcq.collect()
                if not tcq.handoff():
                    leaders -= 1
        assert leaders in (0, 1)


class TestCreditProperties:
    @given(st.integers(min_value=1, max_value=64),
           st.lists(st.integers(min_value=1, max_value=8), max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_credits_never_negative(self, batch, consumes):
        sim = Simulator()
        credits = CreditState(sim, batch, max(1, batch // 2))
        granted = batch
        consumed = 0
        for n in consumes:
            if credits.try_consume(n):
                consumed += n
            assert credits.credits >= 0
            if credits.needs_renewal():
                credits.mark_renewal_sent()
                credits.on_grant(CreditGrant(qp_index=0, credits=batch))
                granted += batch
        assert credits.credits == granted - consumed


class TestSenderViewProperties:
    @given(st.integers(min_value=64, max_value=65536),
           st.lists(st.integers(min_value=1, max_value=4096), max_size=200),
           st.integers(min_value=0, max_value=2 ** 31))
    @settings(max_examples=50, deadline=None)
    def test_inflight_invariants(self, capacity, sizes, seed):
        """Allocate when space allows, ack random prefixes: in-flight
        bytes stay within [0, capacity] and heads stay monotone."""
        rng = random.Random(seed)
        view = SenderView(capacity)
        sent = []
        for size in sizes:
            if view.has_space(size):
                view.allocate(size)
                sent.append(size)
            assert 0 <= view.in_flight_bytes <= view.capacity_bytes
            if sent and rng.random() < 0.4:
                # Receiver consumed a prefix; head observed via response.
                acked = sum(sent[:rng.randint(1, len(sent))])
                view.observe_head(acked)
                assert view.cached_head_bytes >= acked
            assert view.cached_head_bytes <= view.sent_bytes
