"""Property-based end-to-end tests over the FLock stack.

Hypothesis drives random topologies and workloads; the invariants are
absolute: every RPC completes exactly once with its own response, credit
accounting never goes negative, and the simulation stays deterministic.
"""

from hypothesis import given, settings, strategies as st

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def run_workload(n_clients, n_qps, n_threads, per_thread, max_combine,
                 credit_batch, seed):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients, seed=seed))
    cfg = FlockConfig(qps_per_handle=n_qps, max_combine=max_combine,
                      credit_batch=credit_batch,
                      credit_renew_threshold=max(1, credit_batch // 2),
                      sched_interval_ns=200_000.0,
                      thread_sched_interval_ns=200_000.0)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (64, req.payload, 80.0))

    received = []
    handles = []
    for c_idx, node in enumerate(clients):
        client = FlockNode(sim, node, fabric, cfg, seed=seed + c_idx)
        handle = client.fl_connect(server, n_qps=n_qps)
        handles.append(handle)

        def worker(client=client, handle=handle, c_idx=c_idx, tid=0):
            for i in range(per_thread):
                resp = yield from client.fl_call(handle, tid, 1, 64,
                                                 (c_idx, tid, i))
                received.append((resp.payload, resp.thread_id, resp.seq_id))

        for tid in range(n_threads):
            sim.spawn(worker(handle=handle, tid=tid))
    sim.run(until=200_000_000)
    return sim, received, handles, server


@given(
    n_clients=st.integers(min_value=1, max_value=3),
    n_qps=st.integers(min_value=1, max_value=4),
    n_threads=st.integers(min_value=1, max_value=6),
    per_thread=st.integers(min_value=1, max_value=8),
    max_combine=st.integers(min_value=1, max_value=16),
    credit_batch=st.integers(min_value=2, max_value=64),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=25, deadline=None)
def test_every_rpc_completes_exactly_once(n_clients, n_qps, n_threads,
                                          per_thread, max_combine,
                                          credit_batch, seed):
    sim, received, handles, server = run_workload(
        n_clients, n_qps, n_threads, per_thread, max_combine,
        credit_batch, seed)
    expected = n_clients * n_threads * per_thread
    assert len(received) == expected
    # Each response matches its request payload (echo) — no cross-wiring.
    payloads = [p for p, _t, _s in received]
    assert len(set(payloads)) == expected
    # No pending responses leaked.
    for handle in handles:
        assert not handle.pending
    # Server handled exactly the request count.
    assert server.server.requests_handled == expected


@given(
    n_threads=st.integers(min_value=1, max_value=8),
    credit_batch=st.integers(min_value=2, max_value=16),
    seed=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=15, deadline=None)
def test_credits_never_negative_and_bounded_outstanding(n_threads,
                                                        credit_batch, seed):
    sim, received, handles, server = run_workload(
        1, 1, n_threads, 6, 8, credit_batch, seed)
    channel = handles[0].channels[0]
    assert channel.credits.credits >= 0
    # Bytes in flight never exceeded the ring.
    assert channel.sender_view.in_flight_bytes >= 0
    assert (channel.sender_view.in_flight_bytes
            <= channel.sender_view.capacity_bytes)


@given(seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=10, deadline=None)
def test_runs_are_deterministic(seed):
    def run():
        sim, received, handles, server = run_workload(2, 2, 3, 4, 8, 16,
                                                      seed)
        return sim.now, sorted(str(r) for r in received)

    assert run() == run()
