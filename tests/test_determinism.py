"""Determinism guard: same config + seed => byte-identical results.

The DES must be reproducible for the bench store to be meaningful: a
regression gate over committed numbers only works when re-running a
benchmark at the same seed yields the same numbers.  These tests run
each benchmark family twice and require the serialized result rows to
be byte-identical — not approximately equal.
"""

import json

from repro.harness import (
    MicrobenchConfig,
    TxnBenchConfig,
    run_erpc,
    run_flock,
    run_flocktx,
    run_raw_reads,
)
from repro.harness.scorecards import scorecard_fig2a

SMALL = MicrobenchConfig(n_clients=3, threads_per_client=4, outstanding=2,
                         warmup_ns=150_000, measure_ns=150_000)


def serialized(result):
    """Canonical byte representation of everything a RunResult reports."""
    return json.dumps({"row": result.row(), "latency": result.latency,
                       "extras": {k: v for k, v in result.extras.items()}},
                      sort_keys=True)


def test_flock_rows_byte_identical():
    a, b = run_flock(SMALL), run_flock(SMALL)
    assert serialized(a) == serialized(b)


def test_erpc_rows_byte_identical():
    a, b = run_erpc(SMALL), run_erpc(SMALL)
    assert serialized(a) == serialized(b)


def test_raw_reads_rows_byte_identical():
    a = run_raw_reads(24, n_clients=3)
    b = run_raw_reads(24, n_clients=3)
    assert serialized(a) == serialized(b)


def test_flocktx_rows_byte_identical():
    cfg = TxnBenchConfig(n_clients=2, threads_per_client=2,
                         coroutines_per_thread=3,
                         subscribers_per_server=600,
                         warmup_ns=200_000, measure_ns=200_000)
    a, b = run_flocktx(cfg), run_flocktx(cfg)
    assert serialized(a) == serialized(b)


def test_audit_does_not_perturb_results():
    """Auditing is observation only: an audited run must produce the
    same numbers as an unaudited one."""
    plain = run_flock(SMALL)
    audited = run_flock(SMALL, audit=True)
    assert serialized(plain) == serialized(audited)


def test_seed_actually_matters():
    """Guard against accidentally ignoring the seed (which would make
    the byte-identical assertions above vacuous)."""
    from dataclasses import replace

    a = run_flock(SMALL)
    b = run_flock(replace(SMALL, seed=SMALL.seed + 1))
    assert serialized(a) != serialized(b)


def test_scorecards_byte_identical_across_runs(tmp_path):
    """The full artifact chain is deterministic: run -> scorecard ->
    JSON file, twice, compared byte for byte."""
    def build(directory):
        results = {q: run_raw_reads(q, n_clients=3) for q in (12, 24)}
        sc = scorecard_fig2a(results)
        sc.meta["bench_scale"] = 1.0
        # Host wall-clock (meta["host"]) is machine-dependent by
        # design; everything else must be byte-identical.
        host = sc.meta.pop("host")
        assert host["events"] > 0
        return sc.write(str(directory))

    p1 = build(tmp_path / "a")
    p2 = build(tmp_path / "b")
    assert open(p1, "rb").read() == open(p2, "rb").read()
