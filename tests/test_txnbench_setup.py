"""Transaction-bench topology: partitioning, replication, regions."""

import pytest

from repro.apps.kvstore import partition_of, replicas_of
from repro.config import ClusterConfig
from repro.harness.txnbench import TxnBenchConfig, build_txn_servers
from repro.net import build_cluster
from repro.sim import Simulator


def build(n_keys_per_server=200):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=1, n_servers=3))
    cfg = TxnBenchConfig(n_servers=3,
                         subscribers_per_server=n_keys_per_server)
    return cfg, build_txn_servers(cfg, servers), servers


class TestTopology:
    def test_each_server_is_primary_for_its_partition(self):
        cfg, txn_servers, _hw = build()
        for s, server in enumerate(txn_servers):
            assert server.server_id == s
            assert server.primary.partition_id == s

    def test_three_way_replication(self):
        cfg, txn_servers, _hw = build()
        for p in range(3):
            holders = [s for s in range(3)
                       if p in txn_servers[s].replicas]
            assert sorted(holders) == sorted(replicas_of(p, 3))

    def test_population_covers_every_key_on_every_copy(self):
        cfg, txn_servers, _hw = build()
        for key in range(cfg.n_keys()):
            p = partition_of(key, 3)
            for s in replicas_of(p, 3):
                entry = txn_servers[s].replicas[p].get(key)
                assert entry is not None
                assert entry.version == 1

    def test_only_primaries_publish_version_words(self):
        cfg, txn_servers, _hw = build()
        for s, server in enumerate(txn_servers):
            assert server.primary.region is not None
            for p, copy in server.replicas.items():
                if p != s:
                    assert copy.region is None

    def test_version_region_sized_for_population(self):
        cfg, txn_servers, _hw = build()
        primary = txn_servers[0].primary
        # Publishing every key must fit the registered region.
        keys = [k for k in range(cfg.n_keys())
                if partition_of(k, 3) == 0]
        for key in keys:
            addr = primary.addr_of(key)
            assert primary.region.contains(addr, 8)


class TestConfigHelpers:
    def test_n_keys_tatp(self):
        cfg = TxnBenchConfig(workload="tatp", n_servers=3,
                             subscribers_per_server=100)
        assert cfg.n_keys() == 300

    def test_n_keys_smallbank_two_rows_per_account(self):
        cfg = TxnBenchConfig(workload="smallbank", threads_per_client=4,
                             accounts_per_thread=50)
        assert cfg.n_keys() == 2 * 200

    def test_make_workload_types(self):
        import random
        cfg = TxnBenchConfig(workload="tatp", subscribers_per_server=10)
        wl = cfg.make_workload(random.Random(1))
        txn = wl.next_txn()
        assert txn.reads or txn.writes
