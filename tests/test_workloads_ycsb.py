"""YCSB workload generator."""

import random
from collections import Counter

import pytest

from repro.workloads import INSERT, READ, UPDATE, YcsbWorkload


class TestMixes:
    def mix_counts(self, mix, n=20000):
        wl = YcsbWorkload(mix, 1000, random.Random(1))
        return Counter(op for op, _k in (wl.next_op() for _ in range(n)))

    def test_a_is_50_50(self):
        counts = self.mix_counts("A")
        total = sum(counts.values())
        assert counts[READ] / total == pytest.approx(0.5, abs=0.02)
        assert counts[UPDATE] / total == pytest.approx(0.5, abs=0.02)

    def test_b_is_95_5(self):
        counts = self.mix_counts("B")
        total = sum(counts.values())
        assert counts[READ] / total == pytest.approx(0.95, abs=0.01)

    def test_c_is_read_only(self):
        counts = self.mix_counts("C")
        assert set(counts) == {READ}

    def test_d_inserts_fresh_keys(self):
        wl = YcsbWorkload("D", 100, random.Random(2))
        inserted = [key for op, key in (wl.next_op() for _ in range(2000))
                    if op == INSERT]
        assert inserted == sorted(inserted)
        assert all(key >= 100 for key in inserted)
        assert len(set(inserted)) == len(inserted)

    def test_lowercase_mix_accepted(self):
        assert YcsbWorkload("a", 10, random.Random(0)).mix == "A"

    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("Z", 10, random.Random(0))
        with pytest.raises(ValueError):
            YcsbWorkload("A", 0, random.Random(0))


class TestDistribution:
    def test_zipf_head_dominates(self):
        wl = YcsbWorkload("C", 10_000, random.Random(3))
        keys = [key for _op, key in (wl.next_op() for _ in range(20000))]
        head = sum(1 for key in keys if key < 100)
        assert head / len(keys) > 0.3

    def test_keys_in_range(self):
        wl = YcsbWorkload("B", 500, random.Random(4))
        for _ in range(5000):
            op, key = wl.next_op()
            if op != INSERT:
                assert 0 <= key < 500

    def test_workload_d_reads_skew_recent(self):
        wl = YcsbWorkload("D", 1000, random.Random(5))
        reads = [key for op, key in (wl.next_op() for _ in range(20000))
                 if op == READ]
        recent = sum(1 for key in reads if key > 800)
        assert recent / len(reads) > 0.3

    def test_iterable(self):
        wl = YcsbWorkload("A", 100, random.Random(6))
        it = iter(wl)
        op, key = next(it)
        assert op in (READ, UPDATE)
