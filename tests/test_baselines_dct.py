"""DCT baseline: dynamic connections and their switching penalty."""

import pytest

from repro.baselines import DctEndpoint, RcRpcServer
from repro.config import ClusterConfig
from repro.net import build_cluster
from repro.sim import Simulator


def make(n_servers=2):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=1, n_servers=n_servers))
    rc_servers = []
    for node in servers:
        server = RcRpcServer(sim, node, fabric, n_workers=2)
        server.register_handler(1, lambda req: (64, ("ok", req.payload),
                                                50.0))
        rc_servers.append(server)
    endpoint = DctEndpoint(sim, clients[0], fabric)
    return sim, rc_servers, endpoint


class TestDct:
    def test_echo(self):
        sim, servers, endpoint = make()
        out = []

        def app():
            resp = yield from endpoint.call(0, servers[0], 1, 64, "x")
            out.append(resp.payload)

        sim.spawn(app())
        sim.run(until=2_000_000)
        assert out == [("ok", "x")]
        assert endpoint.connects == 1

    def test_same_target_connects_once(self):
        sim, servers, endpoint = make()

        def app():
            for i in range(10):
                yield from endpoint.call(0, servers[0], 1, 64, i)

        sim.spawn(app())
        sim.run(until=10_000_000)
        assert endpoint.connects == 1
        assert endpoint.switches == 0

    def test_alternating_targets_reconnect_every_time(self):
        sim, servers, endpoint = make()

        def app():
            for i in range(10):
                yield from endpoint.call(i % 2, servers[i % 2], 1, 64, i)

        sim.spawn(app())
        sim.run(until=20_000_000)
        assert endpoint.connects == 10
        assert endpoint.switches == 9

    def test_switching_costs_latency(self):
        """The §10 claim: frequently switching remotes degrades DCT."""
        def run(alternate):
            sim, servers, endpoint = make()
            times = []

            def app():
                for i in range(20):
                    target = (i % 2) if alternate else 0
                    started = sim.now
                    yield from endpoint.call(target, servers[target], 1,
                                             64, i)
                    times.append(sim.now - started)

            sim.spawn(app())
            sim.run(until=50_000_000)
            return sum(times) / len(times)

        pinned = run(alternate=False)
        alternating = run(alternate=True)
        assert alternating > pinned + 1_500  # ~ the connect handshake
