"""Loss injection: hardware reliability (RC) vs application burden (UD).

The paper's core reliability argument (§1, §3): RC gives packet delivery
"off the shelf" — the RNIC retransmits invisibly — while UD pushes loss
recovery (and reordering/reassembly) into software. These tests inject
fabric loss and watch both worlds behave accordingly.
"""

import pytest

from repro.baselines import FasstEndpoint, FasstServer, UdChunk, UdEndpoint, UdRpcServer
from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import Reassembler, build_cluster
from repro.sim import Simulator
from repro.verbs import QueuePair, Transport


def lossy_cluster(loss_prob, n_clients=1):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients))
    fabric.loss_prob = loss_prob
    return sim, servers[0], clients, fabric


class TestFlockUnderLoss:
    def test_every_rpc_completes_despite_loss(self):
        """RC retransmission is invisible to FLock: no RPC is ever lost,
        loss shows up purely as latency."""
        sim, server_node, clients, fabric = lossy_cluster(0.05)
        cfg = FlockConfig(qps_per_handle=2)
        server = FlockNode(sim, server_node, fabric, cfg)
        server.fl_reg_handler(1, lambda req: (64, None, 100.0))
        client = FlockNode(sim, clients[0], fabric, cfg, seed=2)
        handle = client.fl_connect(server, n_qps=2)
        done = [0]

        def worker(tid):
            for _ in range(30):
                yield from client.fl_call(handle, tid, 1, 64)
                done[0] += 1

        for tid in range(4):
            sim.spawn(worker(tid))
        sim.run(until=80_000_000)
        assert done[0] == 120  # nothing lost

    def test_loss_inflates_tail_latency(self):
        def run(loss):
            sim, server_node, clients, fabric = lossy_cluster(loss)
            cfg = FlockConfig(qps_per_handle=1)
            server = FlockNode(sim, server_node, fabric, cfg)
            server.fl_reg_handler(1, lambda req: (64, None, 100.0))
            client = FlockNode(sim, clients[0], fabric, cfg, seed=3)
            handle = client.fl_connect(server, n_qps=1)
            latencies = []

            def worker():
                for _ in range(100):
                    started = sim.now
                    yield from client.fl_call(handle, 0, 1, 64)
                    latencies.append(sim.now - started)

            sim.spawn(worker())
            sim.run(until=100_000_000)
            return max(latencies)

        assert run(0.10) > run(0.0)


class TestUdUnderLoss:
    def test_fasst_loses_requests(self):
        sim, server_node, clients, fabric = lossy_cluster(0.2)
        server = FasstServer(sim, server_node, fabric, n_workers=1)
        server.register_handler(1, lambda req: (64, None, 50.0))
        endpoint = FasstEndpoint(sim, clients[0], fabric,
                                 timeout_ns=60_000.0)
        lost = [0]

        def worker():
            for _ in range(50):
                resp = yield from endpoint.call(server, server.qps[0], 1, 64)
                if resp is None:
                    lost[0] += 1

        sim.spawn(worker())
        sim.run(until=100_000_000)
        assert lost[0] > 0
        assert endpoint.lost_requests == lost[0]

    def test_loss_free_fabric_loses_nothing(self):
        sim, server_node, clients, fabric = lossy_cluster(0.0)
        server = FasstServer(sim, server_node, fabric, n_workers=1)
        server.register_handler(1, lambda req: (64, None, 50.0))
        endpoint = FasstEndpoint(sim, clients[0], fabric)

        def worker():
            for _ in range(50):
                resp = yield from endpoint.call(server, server.qps[0], 1, 64)
                assert resp is not None

        sim.spawn(worker())
        sim.run(until=100_000_000)
        assert endpoint.lost_requests == 0


class TestUdChunking:
    def test_large_payload_splits_and_reassembles(self):
        sim, server_node, clients, fabric = lossy_cluster(0.0)
        src = UdEndpoint(sim, clients[0], fabric)
        dst = QueuePair(sim, server_node, fabric, Transport.UD)
        dst.post_recv(4096, n=64)

        def sender():
            n = yield from src.send_large(dst, nbytes=10_000, payload="big")
            return n

        proc = sim.spawn(sender())
        sim.run(until=5_000_000)
        assert proc.value == 3  # 4096 + 4096 + 1808

        reassembler = Reassembler()
        completed = None
        for wc in dst.recv_cq.poll(max_entries=16):
            chunk = wc.payload
            assert isinstance(chunk, UdChunk)
            result = UdEndpoint.receive_large(reassembler, chunk)
            if result is not None:
                completed = result
        assert completed is not None and len(completed) == 3

    def test_chunks_lost_under_loss_leave_message_incomplete(self):
        sim, server_node, clients, fabric = lossy_cluster(0.5)
        src = UdEndpoint(sim, clients[0], fabric)
        dst = QueuePair(sim, server_node, fabric, Transport.UD)
        dst.post_recv(4096, n=64)

        def sender():
            for _ in range(10):
                yield from src.send_large(dst, nbytes=12_000)

        sim.spawn(sender())
        sim.run(until=10_000_000)
        reassembler = Reassembler()
        complete = 0
        for wc in dst.recv_cq.poll(max_entries=64):
            if UdEndpoint.receive_large(reassembler, wc.payload) is not None:
                complete += 1
        # With 50% chunk loss, most 3-chunk messages never complete.
        assert complete < 10
        assert fabric.messages_dropped > 0
