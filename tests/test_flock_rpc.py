"""FLock end-to-end behaviour: RPC, coalescing, credits, scheduling."""

import pytest

from repro.config import ClusterConfig, FlockConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


def make_pair(n_clients=1, n_qps=2, flock_cfg=None, handler_ns=100.0,
              resp_size=64):
    sim = Simulator()
    servers, clients, fabric = build_cluster(
        sim, ClusterConfig(n_clients=n_clients))
    cfg = flock_cfg or FlockConfig(qps_per_handle=n_qps)
    server = FlockNode(sim, servers[0], fabric, cfg)
    server.fl_reg_handler(1, lambda req: (resp_size, ("echo", req.payload),
                                          handler_ns))
    client_nodes = [FlockNode(sim, node, fabric, cfg, seed=i)
                    for i, node in enumerate(clients)]
    handles = [c.fl_connect(server, n_qps=n_qps) for c in client_nodes]
    return sim, server, client_nodes, handles


class TestBasicRpc:
    def test_echo_roundtrip(self):
        sim, server, clients, handles = make_pair()
        out = []

        def app():
            resp = yield from clients[0].fl_call(handles[0], 0, 1, 64, "hi")
            out.append(resp)

        sim.spawn(app())
        sim.run(until=1_000_000)
        assert out and out[0].payload == ("echo", "hi")
        assert out[0].thread_id == 0 and out[0].seq_id == 0

    def test_send_then_recv_split_api(self):
        sim, server, clients, handles = make_pair()
        out = []

        def app():
            ev = yield from clients[0].fl_send_rpc(handles[0], 0, 1, 64, "x")
            resp = yield from clients[0].fl_recv_res(ev)
            out.append(resp.payload)

        sim.spawn(app())
        sim.run(until=1_000_000)
        assert out == [("echo", "x")]

    def test_sequence_ids_map_responses_to_requests(self):
        """Out-of-order completion still routes by (thread, seq) (§4.1)."""
        sim, server, clients, handles = make_pair()
        results = {}

        def app(tid, n):
            for i in range(n):
                resp = yield from clients[0].fl_call(handles[0], tid, 1, 64,
                                                     (tid, i))
                results[(tid, i)] = resp.payload

        for tid in range(4):
            sim.spawn(app(tid, 5))
        sim.run(until=3_000_000)
        assert len(results) == 20
        for (tid, i), payload in results.items():
            assert payload == ("echo", (tid, i))

    def test_many_outstanding_per_thread(self):
        sim, server, clients, handles = make_pair()
        done = [0]

        def sub():
            for _ in range(10):
                yield from clients[0].fl_call(handles[0], 0, 1, 64)
                done[0] += 1

        for _ in range(8):
            sim.spawn(sub())
        sim.run(until=5_000_000)
        assert done[0] == 80

    def test_unregistered_rpc_raises(self):
        sim, server, clients, handles = make_pair()

        def app():
            yield from clients[0].fl_call(handles[0], 0, 99, 64)

        sim.spawn(app())
        with pytest.raises(KeyError):
            sim.run(until=1_000_000)


class TestCoalescing:
    def test_sharing_threads_coalesce(self):
        sim, server, clients, handles = make_pair(n_qps=1)
        handle = handles[0]

        def worker(tid):
            for _ in range(20):
                yield from clients[0].fl_call(handle, tid, 1, 64)

        for tid in range(8):
            sim.spawn(worker(tid))
        sim.run(until=5_000_000)
        assert handle.mean_coalescing_degree() > 1.5

    def test_same_thread_does_not_coalesce(self):
        """Coroutines of one OS thread submit serially (§8.5.2)."""
        sim, server, clients, handles = make_pair(n_qps=1)
        handle = handles[0]

        def sub():
            for _ in range(10):
                yield from clients[0].fl_call(handle, 0, 1, 64)

        for _ in range(8):
            sim.spawn(sub())
        sim.run(until=5_000_000)
        assert handle.mean_coalescing_degree() == pytest.approx(1.0)

    def test_coalescing_disabled_ablation(self):
        sim, server, clients, handles = make_pair(n_qps=1)
        clients[0].client.coalescing_enabled = False
        handle = handles[0]

        def worker(tid):
            for _ in range(20):
                yield from clients[0].fl_call(handle, tid, 1, 64)

        for tid in range(8):
            sim.spawn(worker(tid))
        sim.run(until=8_000_000)
        assert handle.mean_coalescing_degree() == pytest.approx(1.0)

    def test_coalesced_message_reduces_server_messages(self):
        """Server receives fewer messages than requests when sharing."""
        sim, server, clients, handles = make_pair(n_qps=1)
        handle = handles[0]

        def worker(tid):
            for _ in range(25):
                yield from clients[0].fl_call(handle, tid, 1, 64)

        for tid in range(8):
            sim.spawn(worker(tid))
        sim.run(until=8_000_000)
        assert server.server.requests_handled == 200
        assert server.server.messages_handled < 200


class TestCredits:
    def test_sustained_traffic_renews_credits(self):
        cfg = FlockConfig(qps_per_handle=1, credit_batch=8,
                          credit_renew_threshold=4)
        sim, server, clients, handles = make_pair(n_qps=1, flock_cfg=cfg)
        done = [0]

        def worker(tid):
            for _ in range(30):
                yield from clients[0].fl_call(handles[0], tid, 1, 64)
                done[0] += 1

        for tid in range(2):
            sim.spawn(worker(tid))
        sim.run(until=10_000_000)
        assert done[0] == 60  # well beyond the initial 8 credits
        channel = handles[0].channels[0]
        assert channel.credits.grants_received >= 1
        assert server.server.renewals_handled >= 1

    def test_requests_never_exceed_granted_credits(self):
        cfg = FlockConfig(qps_per_handle=1, credit_batch=4,
                          credit_renew_threshold=2)
        sim, server, clients, handles = make_pair(n_qps=1, flock_cfg=cfg)
        channel = handles[0].channels[0]
        granted = [cfg.credit_batch]

        original = channel.credits.on_grant

        def tracking(grant):
            granted[0] += grant.credits
            original(grant)

        channel.credits.on_grant = tracking

        def worker(tid):
            for _ in range(20):
                yield from clients[0].fl_call(handles[0], tid, 1, 64)

        for tid in range(3):
            sim.spawn(worker(tid))
        sim.run(until=10_000_000)
        sent = sum(ch.tcq.requests_sent for ch in handles[0].channels)
        assert sent <= granted[0]


class TestQpScheduling:
    def test_active_qps_capped_at_max_aqp(self):
        """23 handles x 16 QPs converge to <= MAX_AQP active (§5.1)."""
        cfg = FlockConfig(qps_per_handle=8, max_aqp=16,
                          sched_interval_ns=100_000.0,
                          thread_sched_interval_ns=100_000.0)
        sim, server, clients, handles = make_pair(n_clients=4, n_qps=8,
                                                  flock_cfg=cfg)

        def worker(cidx, tid):
            while True:
                yield from clients[cidx].fl_call(handles[cidx], tid, 1, 64)

        for cidx in range(4):
            for tid in range(8):
                sim.spawn(worker(cidx, tid))
        sim.run(until=1_500_000)
        # 4 senders, budget 16 -> 4 active QPs each after redistribution.
        assert server.server.total_active_qps <= 16 + 4
        assert server.server.redistributions >= 1
        done = sum(h.rpcs_completed for h in handles)
        assert done > 100  # traffic kept flowing through redistribution

    def test_idle_client_goes_dormant(self):
        cfg = FlockConfig(qps_per_handle=4, max_aqp=4,
                          sched_interval_ns=100_000.0)
        sim, server, clients, handles = make_pair(n_clients=2, n_qps=4,
                                                  flock_cfg=cfg)

        # Only client 0 sends.
        def worker(tid):
            while True:
                yield from clients[0].fl_call(handles[0], tid, 1, 64)

        for tid in range(4):
            sim.spawn(worker(tid))
        sim.run(until=1_000_000)
        active_busy = len(server.server.clients[handles[0].client_id].active_set)
        active_idle = len(server.server.clients[handles[1].client_id].active_set)
        assert active_idle == 1  # dormant senders keep exactly one QP
        assert active_busy >= active_idle

    def test_migration_preserves_all_responses(self):
        """Deactivating QPs mid-flight loses no requests (§5.2)."""
        cfg = FlockConfig(qps_per_handle=8, max_aqp=4, credit_batch=8,
                          credit_renew_threshold=4,
                          sched_interval_ns=80_000.0,
                          thread_sched_interval_ns=80_000.0)
        sim, server, clients, handles = make_pair(n_clients=2, n_qps=8,
                                                  flock_cfg=cfg)
        done = [0]
        n_workers = 2 * 8
        per_worker = 40

        def worker(cidx, tid):
            for i in range(per_worker):
                yield from clients[cidx].fl_call(handles[cidx], tid, 1, 64)
                done[0] += 1

        for cidx in range(2):
            for tid in range(8):
                sim.spawn(worker(cidx, tid))
        sim.run(until=30_000_000)
        assert done[0] == n_workers * per_worker
        assert server.server.redistributions >= 1


class TestManualDispatch:
    def test_recv_rpc_send_res_roundtrip(self):
        sim, server, clients, handles = make_pair()
        server.fl_reg_manual(7)
        out = []

        def server_app():
            token, request = yield from server.fl_recv_rpc()
            assert request.payload == "manual"
            yield from server.fl_send_res(token, request, 32,
                                          payload="manual-resp")

        def client_app():
            resp = yield from clients[0].fl_call(handles[0], 0, 7, 64,
                                                 "manual")
            out.append(resp.payload)

        sim.spawn(server_app())
        sim.spawn(client_app())
        sim.run(until=2_000_000)
        assert out == ["manual-resp"]


class TestPlumbing:
    def test_piggybacked_head_updates_sender_view(self):
        from repro.flock import coalesced_size

        sim, server, clients, handles = make_pair(n_qps=1)
        channel = handles[0].channels[0]

        def app():
            for _ in range(5):
                yield from clients[0].fl_call(handles[0], 0, 1, 64)

        sim.spawn(app())
        sim.run(until=2_000_000)
        # Serial single-thread calls: 5 one-entry messages, fully acked.
        assert channel.sender_view.cached_head_bytes == 5 * coalesced_size([64])
        assert channel.sender_view.in_flight_bytes == 0

    def test_selective_signaling_reduces_cqes(self):
        cfg_all = FlockConfig(qps_per_handle=1, signal_every=1)
        sim_a, server_a, clients_a, handles_a = make_pair(n_qps=1,
                                                          flock_cfg=cfg_all)

        def app(clients, handles):
            def run():
                for _ in range(32):
                    yield from clients[0].fl_call(handles[0], 0, 1, 64)
            return run

        sim_a.spawn(app(clients_a, handles_a)())
        sim_a.run(until=5_000_000)
        cqes_all = clients_a[0].node.rnic.cqes_generated

        cfg_some = FlockConfig(qps_per_handle=1, signal_every=16)
        sim_b, server_b, clients_b, handles_b = make_pair(n_qps=1,
                                                          flock_cfg=cfg_some)
        sim_b.spawn(app(clients_b, handles_b)())
        sim_b.run(until=5_000_000)
        cqes_some = clients_b[0].node.rnic.cqes_generated
        assert cqes_some < cqes_all

    def test_attach_mreg_registers_remote_region(self):
        sim, server, clients, handles = make_pair()
        region = clients[0].fl_attach_mreg(handles[0], 1 << 16)
        assert region.rkey in handles[0].attached_mrs
        assert server.node.memory.lookup(region.rkey) is region
