"""FLock building blocks: messages, rings, TCQ, credits, schedulers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.flock import (
    CANARY_BYTES,
    HEADER_BYTES,
    META_BYTES,
    CoalescedMessage,
    CombiningQueue,
    CreditGrant,
    CreditState,
    PendingSend,
    RingBuffer,
    RingOverflow,
    RpcRequest,
    RpcResponse,
    SenderView,
    ThreadStats,
    UtilizationTable,
    assign_threads,
    coalesced_size,
    compute_allocation,
)
from repro.flock.thread_scheduler import ThreadStatSnapshot
from repro.hw import HostMemory
from repro.sim import Simulator


class TestMessageLayout:
    def test_sizes_exact(self):
        # header + (meta+data) * n + canary (Fig. 5).
        assert coalesced_size([]) == HEADER_BYTES + CANARY_BYTES
        assert coalesced_size([64]) == HEADER_BYTES + META_BYTES + 64 + CANARY_BYTES
        assert coalesced_size([64, 128]) == (HEADER_BYTES + CANARY_BYTES
                                             + 2 * META_BYTES + 192)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            coalesced_size([-1])
        with pytest.raises(ValueError):
            RpcRequest(thread_id=0, seq_id=0, rpc_id=0, size=-5)
        with pytest.raises(ValueError):
            RpcResponse(thread_id=0, seq_id=0, rpc_id=0, size=-5)

    def test_canary_check(self):
        msg = CoalescedMessage()
        assert msg.is_intact(msg.canary)
        assert not msg.is_intact(msg.canary ^ 1)

    def test_degree_is_at_least_one(self):
        assert CoalescedMessage().coalescing_degree == 1
        msg = CoalescedMessage(entries=[
            RpcRequest(thread_id=0, seq_id=0, rpc_id=0, size=64),
            RpcRequest(thread_id=1, seq_id=0, rpc_id=0, size=64),
        ])
        assert msg.coalescing_degree == 2

    @given(st.lists(st.integers(min_value=0, max_value=4096), max_size=32))
    @settings(max_examples=50, deadline=None)
    def test_total_bytes_matches_formula(self, sizes):
        entries = [RpcRequest(thread_id=i, seq_id=i, rpc_id=0, size=s)
                   for i, s in enumerate(sizes)]
        msg = CoalescedMessage(entries=entries)
        expected = HEADER_BYTES + CANARY_BYTES + sum(META_BYTES + s
                                                     for s in sizes)
        assert msg.total_bytes == expected

    @given(st.lists(st.integers(min_value=0, max_value=512),
                    min_size=2, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_coalescing_saves_bytes(self, sizes):
        """One coalesced message is always smaller on the wire than N
        separate messages — the §4.2 bandwidth argument."""
        combined = coalesced_size(sizes)
        separate = sum(coalesced_size([s]) for s in sizes)
        assert combined < separate


class TestRingBuffer:
    def make(self, slots=4):
        sim = Simulator()
        mem = HostMemory()
        region = mem.register(64 * 1024)
        ring = RingBuffer(sim, region, slots)
        return sim, region, ring

    def test_sink_enqueues(self):
        sim, region, ring = self.make()
        region.sink("msg1", region.addr, 64)
        assert ring.backlog == 1
        ok, msg = ring.messages.try_get()
        assert ok and msg == "msg1"

    def test_consume_advances_head(self):
        sim, region, ring = self.make()
        region.sink("m", region.addr, 8)
        ring.consume()
        assert ring.head == 1 and ring.backlog == 0

    def test_consume_past_tail_rejected(self):
        sim, region, ring = self.make()
        with pytest.raises(RingOverflow):
            ring.consume()

    def test_overflow_raises(self):
        sim, region, ring = self.make(slots=2)
        region.sink("a", region.addr, 8)
        region.sink("b", region.addr, 8)
        with pytest.raises(RingOverflow):
            region.sink("c", region.addr, 8)

    def test_on_message_routing(self):
        sim, region, ring = self.make()
        routed = []
        ring.on_message = routed.append
        region.sink("x", region.addr, 8)
        assert routed == ["x"]
        assert len(ring.messages) == 0


class TestSenderView:
    def test_space_accounting_in_bytes(self):
        view = SenderView(capacity_bytes=256)
        assert view.has_space(128)
        view.allocate(128)
        view.allocate(128)
        assert not view.has_space(1)
        with pytest.raises(RingOverflow):
            view.allocate(1)

    def test_large_messages_consume_more(self):
        """The Fig. 5 ring is a byte buffer: one 1 KB message displaces
        many 64 B ones — the head-of-line mechanism of §5.2."""
        small = SenderView(capacity_bytes=4096)
        for _ in range(30):
            small.allocate(112)
        assert small.has_space(112)
        big = SenderView(capacity_bytes=4096)
        for _ in range(3):
            big.allocate(1100)
        assert not big.has_space(1100)

    def test_observe_head_frees_space(self):
        view = SenderView(capacity_bytes=100)
        view.allocate(100)
        view.observe_head(100)
        assert view.has_space(100)
        assert view.in_flight_bytes == 0

    def test_stale_head_ignored(self):
        view = SenderView(capacity_bytes=1000)
        view.allocate(500)
        view.observe_head(400)
        view.observe_head(100)  # stale
        assert view.cached_head_bytes == 400

    def test_wait_for_space_fires_on_head_advance(self):
        sim = Simulator()
        view = SenderView(capacity_bytes=100)
        view.allocate(100)
        ev = view.wait_for_space(sim, 50)
        assert not ev.triggered
        view.observe_head(60)
        assert ev.triggered

    def test_wait_for_space_immediate_when_free(self):
        sim = Simulator()
        view = SenderView(capacity_bytes=100)
        ev = view.wait_for_space(sim, 10)
        assert ev.triggered

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SenderView(capacity_bytes=0)


class TestCombiningQueue:
    def slot(self, thread_id=0):
        return PendingSend(RpcRequest(thread_id=thread_id, seq_id=0,
                                      rpc_id=0, size=64), 0.0)

    def test_first_enqueue_is_leader(self):
        tcq = CombiningQueue(max_combine=4)
        assert tcq.enqueue(self.slot(0)) is True
        assert tcq.enqueue(self.slot(1)) is False  # follower

    def test_collect_bounded(self):
        tcq = CombiningQueue(max_combine=2)
        for i in range(5):
            tcq.enqueue(self.slot(i))
        batch = tcq.collect()
        assert len(batch) == 2
        assert all(s.copied for s in batch)
        assert len(tcq.pending) == 3

    def test_handoff_continues_while_pending(self):
        tcq = CombiningQueue(max_combine=8)
        tcq.enqueue(self.slot(0))
        tcq.enqueue(self.slot(1))
        tcq.collect()
        assert tcq.handoff() is False  # queue drained
        assert not tcq.leader_active

    def test_handoff_passes_leadership(self):
        tcq = CombiningQueue(max_combine=1)
        tcq.enqueue(self.slot(0))
        tcq.enqueue(self.slot(1))
        tcq.collect()
        assert tcq.handoff() is True
        assert tcq.leader_active

    def test_median_degree_reporting(self):
        tcq = CombiningQueue(max_combine=8)
        for degree in (1, 3, 5):
            tcq.record_message(degree)
        assert tcq.median_degree() == 3
        # Report resets the window.
        assert tcq.median_degree() == 1

    def test_mean_degree(self):
        tcq = CombiningQueue(max_combine=8)
        tcq.record_message(2)
        tcq.record_message(4)
        assert tcq.mean_degree == 3.0

    def test_bad_max_combine(self):
        with pytest.raises(ValueError):
            CombiningQueue(max_combine=0)


class TestCreditState:
    def make(self, batch=32, threshold=16):
        return Simulator(), CreditState(Simulator(), batch, threshold)

    def test_bootstrap_credits(self):
        sim = Simulator()
        credits = CreditState(sim, 32, 16)
        assert credits.credits == 32
        assert credits.try_consume(32)
        assert not credits.try_consume(1)

    def test_renewal_at_half(self):
        sim = Simulator()
        credits = CreditState(sim, 32, 16)
        credits.try_consume(15)
        assert not credits.needs_renewal()
        credits.try_consume(1)
        assert credits.needs_renewal()
        credits.mark_renewal_sent()
        assert not credits.needs_renewal()  # one outstanding at a time

    def test_grant_tops_up_and_wakes(self):
        sim = Simulator()
        credits = CreditState(sim, 32, 16)
        credits.try_consume(32)
        ev = credits.wait_for_credits()
        credits.on_grant(CreditGrant(qp_index=0, credits=32))
        sim.run()
        assert ev.processed
        assert credits.credits == 32
        assert credits.grants_received == 1

    def test_decline_deactivates(self):
        sim = Simulator()
        credits = CreditState(sim, 32, 16)
        credits.mark_renewal_sent()
        credits.on_grant(CreditGrant(qp_index=0, credits=0))
        assert not credits.active
        assert credits.declines_received == 1
        assert not credits.needs_renewal()

    def test_reactivate(self):
        sim = Simulator()
        credits = CreditState(sim, 32, 16)
        credits.deactivate()
        credits.reactivate(32)
        assert credits.active and credits.credits >= 32

    def test_invalid_params(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CreditState(sim, 0, 0)
        with pytest.raises(ValueError):
            CreditState(sim, 8, 9)


class TestQpSchedulerMath:
    def test_report_accumulates(self):
        table = UtilizationTable()
        table.report(0, 1, 2)
        table.report(0, 1, 3)
        table.report(0, 2, 1)
        assert table.per_client() == {0: 6.0}
        assert table.qp_utilization(0) == {1: 5.0, 2: 1.0}

    def test_degree_below_one_rejected(self):
        table = UtilizationTable()
        with pytest.raises(ValueError):
            table.report(0, 0, 0)

    def test_reset(self):
        table = UtilizationTable()
        table.report(0, 0, 4)
        table.reset()
        assert table.per_client() == {0: 0.0}

    def test_allocation_proportional(self):
        alloc = compute_allocation({0: 30.0, 1: 10.0}, max_aqp=40,
                                   qps_per_client={0: 64, 1: 64})
        assert alloc[0] == 30 and alloc[1] == 10

    def test_dormant_gets_one(self):
        alloc = compute_allocation({0: 10.0, 1: 0.0}, max_aqp=16,
                                   qps_per_client={0: 8, 1: 8})
        assert alloc[1] == 1
        assert alloc[0] == 8  # capped at owned QPs

    def test_everyone_dormant(self):
        alloc = compute_allocation({0: 0.0, 1: 0.0}, max_aqp=16,
                                   qps_per_client={0: 4, 1: 4})
        assert alloc == {0: 1, 1: 1}

    def test_minimum_one_even_when_budget_tiny(self):
        alloc = compute_allocation({i: 1.0 for i in range(100)}, max_aqp=10,
                                   qps_per_client={i: 4 for i in range(100)})
        assert all(v == 1 for v in alloc.values())

    def test_bad_max_aqp(self):
        with pytest.raises(ValueError):
            compute_allocation({}, 0, {})

    @given(st.dictionaries(st.integers(min_value=0, max_value=20),
                           st.floats(min_value=0, max_value=1000,
                                     allow_nan=False),
                           min_size=1, max_size=20),
           st.integers(min_value=1, max_value=256))
    @settings(max_examples=50, deadline=None)
    def test_allocation_invariants(self, utilization, max_aqp):
        caps = {cid: 16 for cid in utilization}
        alloc = compute_allocation(utilization, max_aqp, caps)
        assert set(alloc) == set(utilization)
        for cid, n in alloc.items():
            assert 1 <= n <= caps[cid]
            # No sender exceeds its proportional share by more than the
            # min-1-QP guarantee.
            assert n <= max(1, max_aqp)


class TestThreadSchedulerMath:
    def snap(self, tid, median, requests, nbytes):
        return ThreadStatSnapshot(thread_id=tid, median_size=median,
                                  requests=requests, bytes_sent=nbytes)

    def test_all_threads_assigned_to_active_qps(self):
        snaps = [self.snap(i, 64, 100, 6400) for i in range(10)]
        mapping = assign_threads(snaps, active_qps=[3, 5])
        assert set(mapping) == set(range(10))
        assert set(mapping.values()) <= {3, 5}

    def test_small_and_large_separated(self):
        """Algorithm 1's purpose: size-sorted assignment clusters the
        large-payload threads on their own QPs once the small threads
        have consumed a full byte quota."""
        smalls = [self.snap(i, 64, 1000, 100_000) for i in range(8)]
        larges = [self.snap(8, 4096, 100, 400_000),
                  self.snap(9, 4096, 100, 400_000)]
        mapping = assign_threads(smalls + larges, active_qps=[0, 1])
        assert {mapping[i] for i in range(8)} == {0}
        assert mapping[8] == 1 and mapping[9] == 1

    def test_sorted_by_size_then_count(self):
        """Large threads are always assigned after small ones, so they
        occupy the tail QPs and never interleave between small threads."""
        snaps = [self.snap(0, 1024, 10, 10240),
                 self.snap(1, 64, 10, 640),
                 self.snap(2, 64, 5, 320)]
        mapping = assign_threads(snaps, active_qps=[0, 1, 2])
        # Sorted order is (64,5), (64,10), (1024,10): the large thread's
        # QP index is >= every small thread's QP index.
        assert mapping[0] >= mapping[1] >= mapping[2]

    def test_load_balanced_by_bytes(self):
        snaps = [self.snap(i, 64, 10, 1000) for i in range(8)]
        mapping = assign_threads(snaps, active_qps=[0, 1])
        from collections import Counter
        counts = Counter(mapping.values())
        assert counts[0] == counts[1] == 4

    def test_new_threads_random_but_valid(self):
        snaps = [self.snap(i, 0, 0, 0) for i in range(5)]
        mapping = assign_threads(snaps, active_qps=[7, 8],
                                 rng=random.Random(1))
        assert set(mapping) == set(range(5))
        assert set(mapping.values()) <= {7, 8}

    def test_no_active_qps_rejected(self):
        with pytest.raises(ValueError):
            assign_threads([], active_qps=[])

    def test_stats_accumulate_and_reset(self):
        stats = ThreadStats(3)
        stats.record(64)
        stats.record(128)
        snap = stats.snapshot_and_reset()
        assert snap.requests == 2
        assert snap.bytes_sent == 192
        assert snap.median_size == 96
        assert stats.requests == 0 and not stats.sizes

    @given(st.lists(st.tuples(st.integers(min_value=1, max_value=4096),
                              st.integers(min_value=1, max_value=1000)),
                    min_size=1, max_size=40),
           st.integers(min_value=1, max_value=8))
    @settings(max_examples=50, deadline=None)
    def test_assignment_total_and_valid(self, thread_specs, n_qps):
        snaps = [self.snap(i, median, count, median * count)
                 for i, (median, count) in enumerate(thread_specs)]
        qps = list(range(n_qps))
        mapping = assign_threads(snaps, qps)
        assert set(mapping) == set(range(len(thread_specs)))
        assert set(mapping.values()) <= set(qps)
