"""Workload generators: mixes, skew, payload-size distributions."""

import random
from collections import Counter

import pytest

from repro.workloads import (
    BimodalSize,
    FixedSize,
    SmallbankWorkload,
    TatpWorkload,
)


class TestTatp:
    def make(self, seed=1):
        return TatpWorkload(3, random.Random(seed),
                            subscribers_per_server=1000)

    def classify(self, txn):
        if not txn.writes:
            return "single-read" if len(txn.reads) == 1 else "multi-read"
        return "read-write" if txn.reads else "write"

    def test_mix_fractions(self):
        """70% single-read / 10% multi-read / 20% updating (paper)."""
        wl = self.make()
        counts = Counter(self.classify(wl.next_txn()) for _ in range(20000))
        total = sum(counts.values())
        assert counts["single-read"] / total == pytest.approx(0.70, abs=0.02)
        assert counts["multi-read"] / total == pytest.approx(0.10, abs=0.02)
        updating = (counts["read-write"] + counts["write"]) / total
        assert updating == pytest.approx(0.20, abs=0.02)

    def test_keys_in_range(self):
        wl = self.make()
        for _ in range(2000):
            txn = wl.next_txn()
            for key in list(txn.reads) + txn.write_keys:
                assert 0 <= key < 3000

    def test_reads_and_writes_disjoint(self):
        wl = self.make()
        for _ in range(2000):
            txn = wl.next_txn()
            assert not (set(txn.reads) & set(txn.write_keys))

    def test_multi_read_has_several_keys(self):
        wl = self.make()
        multi = [t for t in (wl.next_txn() for _ in range(5000))
                 if not t.writes and len(t.reads) > 1]
        assert multi
        assert all(1 < len(t.reads) <= 3 for t in multi)

    def test_deterministic_given_seed(self):
        a = TatpWorkload(3, random.Random(9), subscribers_per_server=100)
        b = TatpWorkload(3, random.Random(9), subscribers_per_server=100)
        for _ in range(50):
            ta, tb = a.next_txn(), b.next_txn()
            assert ta.reads == tb.reads and ta.writes == tb.writes

    def test_iterable(self):
        wl = self.make()
        it = iter(wl)
        assert next(it).reads is not None

    def test_bad_config(self):
        with pytest.raises(ValueError):
            TatpWorkload(0, random.Random(1))


class TestSmallbank:
    def make(self, seed=2, accounts=5000):
        return SmallbankWorkload(accounts, random.Random(seed))

    def test_write_fraction_is_85_percent(self):
        wl = self.make()
        writers = sum(1 for _ in range(20000) if wl.next_txn().writes)
        assert writers / 20000 == pytest.approx(0.85, abs=0.02)

    def test_hot_account_skew(self):
        """4% of accounts receive ~90% of accesses (paper §8.5.2)."""
        wl = self.make(accounts=10000)
        hot_rows = 2 * wl.keygen.n_hot  # checking+savings of hot accounts
        touched = []
        for _ in range(20000):
            txn = wl.next_txn()
            touched.extend(list(txn.reads) + txn.write_keys)
        hot_share = sum(1 for k in touched if k < hot_rows) / len(touched)
        assert hot_share == pytest.approx(0.90, abs=0.03)

    def test_keys_are_valid_rows(self):
        wl = self.make(accounts=100)
        for _ in range(2000):
            txn = wl.next_txn()
            for key in list(txn.reads) + txn.write_keys:
                assert 0 <= key < 200

    def test_send_payment_touches_two_accounts(self):
        wl = self.make()
        two_writers = [t for t in (wl.next_txn() for _ in range(5000))
                       if len(t.writes) == 2]
        assert two_writers
        for txn in two_writers:
            k1, k2 = txn.write_keys
            assert k1 // 2 != k2 // 2  # distinct accounts

    def test_bad_config(self):
        with pytest.raises(ValueError):
            SmallbankWorkload(2, random.Random(1))


class TestSizeGenerators:
    def test_fixed(self):
        gen = FixedSize(64)
        assert gen.next(0) == 64 and gen.next(99) == 64
        with pytest.raises(ValueError):
            FixedSize(-1)

    def test_bimodal_per_thread_assignment(self):
        gen = BimodalSize(n_threads=20, large_size=1024)
        sizes = [gen.next(tid) for tid in range(20)]
        assert sizes.count(1024) == 2  # 10% of 20 threads
        assert sizes.count(64) == 18
        # Deterministic per thread.
        assert gen.next(0) == gen.next(0)

    def test_bimodal_minimum_one_large(self):
        gen = BimodalSize(n_threads=4, large_size=512)
        sizes = [gen.next(tid) for tid in range(4)]
        assert sizes.count(512) == 1

    def test_bimodal_bad_fraction(self):
        with pytest.raises(ValueError):
            BimodalSize(10, 512, large_fraction=2.0)
