"""Unreliable-connection (UC) transport semantics.

Table 1: UC supports writes and send/recv with a 2 GB limit, but gives
no reads, no atomics, and no hardware reliability — a lost UC write
vanishes silently while the sender still sees a local completion.
"""

import pytest

from repro.config import ClusterConfig
from repro.net import build_cluster
from repro.sim import Simulator
from repro.verbs import QueuePair, Transport, Verb, VerbError, WorkRequest

from conftest import run_gen


@pytest.fixture
def uc_pair(small_cluster):
    sim, server, clients, fabric = small_cluster
    sqp = QueuePair(sim, server, fabric, Transport.UC)
    cqp = QueuePair(sim, clients[0], fabric, Transport.UC)
    cqp.connect(sqp)
    return sim, server, clients[0], fabric, cqp, sqp


class TestUcSemantics:
    def test_uc_write_works(self, uc_pair):
        sim, server, client, fabric, cqp, sqp = uc_pair
        region = server.memory.register(4096)
        landed = []
        region.sink = lambda p, a, l: landed.append(p)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=64, remote_addr=region.addr,
                rkey=region.rkey, payload="uc-data"))
            return wc

        assert run_gen(sim, proc()).ok
        assert landed == ["uc-data"]

    def test_uc_read_rejected(self, uc_pair):
        sim, server, client, fabric, cqp, sqp = uc_pair
        with pytest.raises(VerbError):
            cqp.post_send(WorkRequest(verb=Verb.READ, length=8))

    def test_uc_atomics_rejected(self, uc_pair):
        sim, server, client, fabric, cqp, sqp = uc_pair
        for verb in (Verb.FETCH_ADD, Verb.CMP_SWAP):
            with pytest.raises(VerbError):
                cqp.post_send(WorkRequest(verb=verb, length=8))

    def test_uc_send_recv_works(self, uc_pair):
        sim, server, client, fabric, cqp, sqp = uc_pair
        sqp.post_recv(4096)

        def proc():
            wc = yield cqp.post_send(WorkRequest(verb=Verb.SEND, length=64,
                                                 payload="msg"))
            return wc

        assert run_gen(sim, proc()).ok
        assert sqp.recv_cq.poll()[0].payload == "msg"

    def test_uc_large_messages_allowed(self, uc_pair):
        """UC keeps the 2 GB limit (unlike UD's 4 KB)."""
        sim, server, client, fabric, cqp, sqp = uc_pair
        region = server.memory.register(1 << 21)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=1 << 20, remote_addr=region.addr,
                rkey=region.rkey))
            return wc

        assert run_gen(sim, proc()).ok


class TestUcUnderLoss:
    def test_lost_uc_write_vanishes_silently(self, uc_pair):
        """No hardware retransmission: the payload never lands but the
        sender still completes locally — the application's problem."""
        sim, server, client, fabric, cqp, sqp = uc_pair
        fabric.loss_prob = 1.0
        region = server.memory.register(4096)
        landed = []
        region.sink = lambda p, a, l: landed.append(p)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=64, remote_addr=region.addr,
                rkey=region.rkey, payload="ghost"))
            return wc

        wc = run_gen(sim, proc())
        assert wc.ok            # sender-side completion regardless
        assert landed == []     # but nothing arrived
        assert fabric.messages_dropped == 1

    def test_rc_write_always_lands(self, small_cluster):
        """Contrast: the same write over RC retransmits and lands."""
        sim, server, clients, fabric = small_cluster
        fabric.loss_prob = 1.0
        sqp = QueuePair(sim, server, fabric, Transport.RC)
        cqp = QueuePair(sim, clients[0], fabric, Transport.RC)
        cqp.connect(sqp)
        region = server.memory.register(4096)
        landed = []
        region.sink = lambda p, a, l: landed.append(p)

        def proc():
            wc = yield cqp.post_send(WorkRequest(
                verb=Verb.WRITE, length=64, remote_addr=region.addr,
                rkey=region.rkey, payload="persistent"))
            return wc

        assert run_gen(sim, proc()).ok
        assert landed == ["persistent"]
