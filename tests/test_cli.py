"""The command-line experiment runner."""

import pytest

from repro.harness.cli import build_parser, main


class TestParser:
    def test_all_experiments_listed(self, capsys):
        main(["list"])
        out = capsys.readouterr().out
        for name in ("fig2a", "fig2b", "fig6", "fig9", "fig10", "fig14",
                     "fig16"):
            assert name in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_defaults(self):
        args = build_parser().parse_args(["fig6"])
        assert args.outstanding == 1
        assert args.clients == 23

    def test_fig11_and_fig12_parsers(self):
        args = build_parser().parse_args(["fig11", "--sizes", "512"])
        assert args.sizes == [512]
        args = build_parser().parse_args(["fig12", "--clients-list", "46"])
        assert args.clients_list == [46]

    def test_scale_flag_sets_env(self, monkeypatch, capsys):
        import os
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        main(["--scale", "0.5", "list"])
        assert os.environ["REPRO_BENCH_SCALE"] == "0.5"


class TestSmallRuns:
    def test_fig2a_prints_table(self, capsys, monkeypatch):
        # Register the env key with monkeypatch so the --scale side
        # effect is rolled back and cannot leak into later tests.
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        main(["--scale", "0.5", "fig2a", "--qps", "8", "--clients", "2"])
        out = capsys.readouterr().out
        assert "Fig 2(a)" in out and "Mops" in out

    def test_fig6_prints_table(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        main(["--scale", "0.3", "fig6", "--threads", "2",
              "--clients", "2"])
        out = capsys.readouterr().out
        assert "FLock" in out and "eRPC" in out


class TestProfileCommand:
    @pytest.fixture(autouse=True)
    def _clean_env(self, monkeypatch):
        # delenv(raising=False) on an *absent* var records nothing to
        # restore, so env set by the command under test would leak into
        # later tests.  setenv first registers the original (absent)
        # state; the delenv then leaves the var unset for the test.
        for var in ("REPRO_BENCH_SCALE", "REPRO_PROFILE",
                    "REPRO_OCCUPANCY"):
            monkeypatch.setenv(var, "pending-delete")
            monkeypatch.delenv(var)

    def test_profile_subcommand_exports(self, capsys, tmp_path):
        flame = tmp_path / "fig2a.folded"
        census = tmp_path / "fig2a.json"
        rc = main(["--scale", "0.05", "profile",
                   "--flame", str(flame), "--census", str(census),
                   "fig2a", "--qps", "8", "--clients", "2"])
        assert not rc
        out = capsys.readouterr().out
        assert "Cost observatory" in out
        import json
        doc = json.loads(census.read_text())
        for prof in doc["runs"].values():
            shares = [b["share"] for b in prof["host"]["buckets"]]
            assert abs(sum(shares) - 1.0) < 1e-6
            assert "occupancy" in prof
        for line in flame.read_text().splitlines():
            frame, ns = line.rsplit(" ", 1)
            # label;component;kind frames, flamegraph.pl-ready
            assert frame.count(";") == 2 and int(ns) >= 0

    def test_profile_requires_a_figure(self, capsys):
        assert main(["profile"]) == 2

    def test_plain_run_has_no_observatory_output(self, capsys):
        main(["--scale", "0.05", "fig2a", "--qps", "8", "--clients", "2"])
        assert "Cost observatory" not in capsys.readouterr().out
