"""The public Table-2 API surface and config invariants."""

import inspect

import pytest

from repro.config import ClusterConfig, CpuConfig, FlockConfig, NetConfig, NicConfig
from repro.flock import FlockNode
from repro.net import build_cluster
from repro.sim import Simulator


TABLE2_METHODS = [
    "fl_connect",
    "fl_attach_mreg",
    "fl_send_rpc",
    "fl_recv_res",
    "fl_reg_handler",
    "fl_recv_rpc",
    "fl_send_res",
    "fl_read",
    "fl_write",
    "fl_fetch_and_add",
    "fl_cmp_and_swap",
]


class TestTable2Surface:
    def test_all_table2_apis_exist(self):
        """Every API from the paper's Table 2 is present by name."""
        for name in TABLE2_METHODS:
            assert hasattr(FlockNode, name), name
            assert callable(getattr(FlockNode, name))

    def test_every_public_method_documented(self):
        for name, member in inspect.getmembers(FlockNode,
                                               predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert member.__doc__, "undocumented public API: %s" % name


class TestConfigDefaults:
    def test_paper_constants(self):
        """The defaults are the paper's published parameters."""
        cfg = FlockConfig()
        assert cfg.max_aqp == 256        # §5.1 / §8.1
        assert cfg.credit_batch == 32    # §5.1: C = 32
        assert cfg.credit_renew_threshold == 16  # renew at half
        net = NetConfig()
        assert net.mtu == 4096           # §8.1
        cluster = ClusterConfig()
        assert cluster.n_clients == 23   # 24-node cluster, 1 server
        assert CpuConfig().cores == 32   # AMD 7452

    def test_renew_threshold_within_batch(self):
        cfg = FlockConfig()
        assert 0 < cfg.credit_renew_threshold <= cfg.credit_batch

    def test_max_aqp_below_nic_cache(self):
        """The whole point of MAX_AQP=256: active QPs fit the NIC cache
        (Fig. 2a shows trouble past ~700)."""
        assert FlockConfig().max_aqp < NicConfig().qp_cache_entries

    def test_credits_fit_ring(self):
        """Outstanding messages per QP (bounded by credits) can never
        overflow the request ring."""
        cfg = FlockConfig()
        assert cfg.credit_batch * 2 <= cfg.ring_slots

    def test_bandwidth_is_100gbps(self):
        net = NetConfig()
        assert net.bandwidth_bytes_per_ns == pytest.approx(12.5)


class TestEndpointWiring:
    def test_flock_node_combines_client_and_server(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=1))
        node = FlockNode(sim, servers[0], fabric)
        assert node.client is not None
        assert node.server is not None
        assert node.mem is not None

    def test_connect_creates_requested_qps(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=1))
        server = FlockNode(sim, servers[0], fabric)
        client = FlockNode(sim, clients[0], fabric)
        handle = client.fl_connect(server, n_qps=6)
        assert len(handle.channels) == 6
        assert all(ch.client_qp.remote is ch.server_qp
                   for ch in handle.channels)
        # Separate rings per QP, registered on the right nodes.
        for ch in handle.channels:
            assert ch.request_ring.region in [
                server.node.memory.lookup(ch.request_ring.region.rkey)]
            assert clients[0].memory.lookup(ch.response_ring.region.rkey)

    def test_default_qp_pool_size(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=1))
        cfg = FlockConfig(qps_per_handle=3)
        server = FlockNode(sim, servers[0], fabric, cfg)
        client = FlockNode(sim, clients[0], fabric, cfg)
        handle = client.fl_connect(server)  # n_qps defaults from config
        assert len(handle.channels) == 3

    def test_two_handles_get_distinct_client_ids(self):
        sim = Simulator()
        servers, clients, fabric = build_cluster(sim,
                                                 ClusterConfig(n_clients=2))
        server = FlockNode(sim, servers[0], fabric)
        a = FlockNode(sim, clients[0], fabric).fl_connect(server, n_qps=1)
        b = FlockNode(sim, clients[1], fabric).fl_connect(server, n_qps=1)
        assert a.client_id != b.client_id
        assert len(server.server.clients) == 2
