"""Random streams, zipfian/hot-cold samplers, percentile math."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    HotColdGenerator,
    Streams,
    ZipfGenerator,
    percentile,
    summarize_latencies,
)


class TestStreams:
    def test_same_name_same_sequence(self):
        s = Streams(seed=42)
        a = [s.stream("x").random() for _ in range(3)]
        b = [s.stream("x").random() for _ in range(3)]
        assert a == b

    def test_different_names_differ(self):
        s = Streams(seed=42)
        assert s.stream("x").random() != s.stream("y").random()

    def test_different_seeds_differ(self):
        assert Streams(1).stream("x").random() != Streams(2).stream("x").random()


class TestZipf:
    def test_bounds(self):
        gen = ZipfGenerator(1000, theta=0.99, rng=random.Random(1))
        for _ in range(5000):
            assert 0 <= gen.next() < 1000

    def test_skew_favors_low_keys(self):
        gen = ZipfGenerator(10000, theta=0.99, rng=random.Random(2))
        samples = [gen.next() for _ in range(20000)]
        top_100 = sum(1 for s in samples if s < 100)
        # Zipf 0.99 puts a large share of mass on the head.
        assert top_100 / len(samples) > 0.35

    def test_theta_zero_is_uniform(self):
        gen = ZipfGenerator(100, theta=0.0, rng=random.Random(3))
        samples = [gen.next() for _ in range(20000)]
        head = sum(1 for s in samples if s < 10)
        assert 0.05 < head / len(samples) < 0.15

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(0)
        with pytest.raises(ValueError):
            ZipfGenerator(10, theta=1.5)

    def test_large_n_constructs_fast(self):
        gen = ZipfGenerator(32_000_000, theta=0.99, rng=random.Random(4))
        assert 0 <= gen.next() < 32_000_000


class TestHotCold:
    def test_smallbank_law(self):
        """4% of keys should get ~90% of accesses (paper §8.5.2)."""
        gen = HotColdGenerator(10000, hot_fraction=0.04, hot_access=0.90,
                               rng=random.Random(5))
        n_hot = gen.n_hot
        samples = [gen.next() for _ in range(30000)]
        hot_share = sum(1 for s in samples if s < n_hot) / len(samples)
        assert hot_share == pytest.approx(0.90, abs=0.02)

    def test_bounds(self):
        gen = HotColdGenerator(50, rng=random.Random(6))
        for _ in range(2000):
            assert 0 <= gen.next() < 50

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HotColdGenerator(0)
        with pytest.raises(ValueError):
            HotColdGenerator(10, hot_fraction=0.0)
        with pytest.raises(ValueError):
            HotColdGenerator(10, hot_access=1.5)


class TestPercentile:
    def test_simple_median(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 25) == pytest.approx(2.5)

    def test_extremes(self):
        data = [5, 7, 9]
        assert percentile(data, 0) == 5
        assert percentile(data, 100) == 9

    def test_single_element(self):
        assert percentile([3.5], 99) == 3.5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_bad_p_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 150)

    @given(st.lists(st.floats(min_value=-1e9, max_value=1e9,
                              allow_nan=False), min_size=1, max_size=200),
           st.floats(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_within_range(self, values, p):
        ordered = sorted(values)
        result = percentile(ordered, p)
        assert ordered[0] <= result <= ordered[-1]

    @given(st.lists(st.floats(min_value=0, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_percentile_monotone_in_p(self, values):
        ordered = sorted(values)
        assert percentile(ordered, 50) <= percentile(ordered, 99)


class TestSummarize:
    def test_empty(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0 and summary["median"] == 0.0
        assert summary["p999"] == 0.0

    def test_basic(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["median"] == pytest.approx(2.5)
        assert summary["min"] == 1.0 and summary["max"] == 4.0
        assert summary["mean"] == pytest.approx(2.5)

    def test_p999_sits_between_p99_and_max(self):
        samples = list(float(i) for i in range(1, 2001))
        summary = summarize_latencies(samples)
        assert summary["p99"] <= summary["p999"] <= summary["max"]
        assert summary["p999"] == pytest.approx(
            percentile(sorted(samples), 99.9))
