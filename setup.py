"""Setup shim: enables editable installs where the `wheel` package is absent."""
from setuptools import setup

setup()
